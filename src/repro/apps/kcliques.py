"""K-Cliques (§4, Algorithm 3).

Find all fully-connected vertex sets of size K. Flowlet version (one
multi-phase job):

* RelationshipLoader streams ``a knows b`` pairs (both directions);
* KCliquesGraphBuilder (reduce per vertex) stores each adjacency set in
  the node-shared KV store — the paper's "building the graph into memory
  distributedly ... one JVM per node so all tasks can share memory";
* TwoCliquesGenerator (reduce) fires only after the builder completes on
  every node (a pure control edge models Alg. 3's "when all data is ready
  in memory, call TwoCliquesGenerator") and streams 2-clique candidates;
* a chain of ICliquesVerify map flowlets (I = 2..K) validates candidates
  against the locally stored adjacency of their newest vertex and extends
  them — fine-grain, asynchronous, in-memory.

Each clique ``{v1 < ... < vK}`` is generated along exactly one path
(ascending vertex order), so no deduplication pass is needed.

Hadoop version: K-1 chained jobs; adjacency lists must ride the shuffle
and the DFS through *every* level — and for larger graphs the per-task
JVM heap simply cannot hold the graph (the paper: "Hadoop quickly runs
out of memory for larger graphs"), which :class:`MemoryBudgetExceeded`
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppEnv, AppResult
from repro.core import (
    FlowletGraph,
    Loader,
    LocalFSSource,
    Map,
    Reduce,
)
from repro.data.rmat import rmat_edges
from repro.mapreduce import Mapper, MRJob, Reducer, run_chain
from repro.mapreduce.chain import chain_makespan

APP = "kcliques"
INPUT = f"{APP}-edges"

#: set-membership probing over candidate tuples is CPU-heavy
COMPUTE_FACTOR = 48.0


@dataclass(frozen=True)
class KCliquesParams:
    scale: int = 7  # 2**scale vertices
    n_edges: int = 1_500
    k: int = 3
    seed: int = 0
    #: reducers per Hadoop job; the vertex key space is wide, so PUMA-style
    #: configs use many waves of reducers
    hadoop_reducers: int = 0  # 0 = engine default

    def __post_init__(self):
        if self.k < 3:
            raise ValueError("k must be >= 3")


def generate_input(params: KCliquesParams) -> list[tuple[int, int]]:
    return rmat_edges(params.scale, params.n_edges, seed=params.seed)


# -- HAMR -------------------------------------------------------------------------------


class _RelationshipLoader(Loader):
    """Streams each undirected relationship in both directions."""

    def load(self, ctx, records) -> None:
        for u, v in records:
            ctx.emit(u, v)
            ctx.emit(v, u)


def build_hamr_graph(env: AppEnv, params: KCliquesParams) -> FlowletGraph:
    graph = FlowletGraph(APP)
    loader = graph.add(
        _RelationshipLoader("KCliquesLoader", LocalFSSource(env.localfs, INPUT))
    )

    def build_graph(ctx, vertex: int, neighbors: list) -> None:
        ctx.kv_put(("adj", vertex), frozenset(neighbors))

    builder = graph.add(Reduce("KCliquesGraphBuilder", fn=build_graph))

    def two_cliques(ctx, vertex: int, neighbors: list) -> None:
        for w in sorted(set(neighbors)):
            if w > vertex:
                ctx.emit(w, (vertex,))

    generator = graph.add(Reduce("TwoCliquesGenerator", fn=two_cliques))

    def make_verify(level: int):
        final = level == params.k

        def verify(ctx, w: int, base: tuple) -> None:
            adjacency = ctx.kv_get(("adj", w))
            if adjacency is None or any(b not in adjacency for b in base):
                return
            clique = base + (w,)
            if final:
                ctx.emit(clique, 1)
            else:
                for x in sorted(adjacency):
                    if x > w:
                        ctx.emit(x, clique)

        return verify

    graph.connect(loader, builder)
    graph.connect(loader, generator)
    # Control edge: the generator must not run before every node's graph
    # is resident in memory (Alg. 3 step 3). The builder emits no data.
    graph.connect(builder, generator)
    previous = generator
    for level in range(2, params.k + 1):
        verify = graph.add(
            Map(
                f"{level}CliquesVerify",
                fn=make_verify(level),
                compute_factor=COMPUTE_FACTOR,
            )
        )
        graph.connect(previous, verify)
        previous = verify
    return graph


def run_hamr(env: AppEnv, params: KCliquesParams, edges=None) -> AppResult:
    if edges is None:
        edges = generate_input(params)
    env.ingest_local(INPUT, edges)
    result = env.hamr.run(build_hamr_graph(env, params))
    cliques = sorted(clique for clique, _one in result.output(f"{params.k}CliquesVerify"))
    return AppResult(
        APP, "hamr", result.makespan, cliques,
        counters=result.counters, metrics=result.metrics,
    )


# -- Hadoop ------------------------------------------------------------------------------


def build_hadoop_jobs(params: KCliquesParams) -> list[MRJob]:
    def symmetrize(ctx, u: int, v: int) -> None:
        ctx.emit(u, v)
        ctx.emit(v, u)

    def build_and_seed(ctx, vertex: int, neighbors: list) -> None:
        adjacency = tuple(sorted(set(neighbors)))
        ctx.emit(vertex, ("A", adjacency))
        for w in adjacency:
            if w > vertex:
                ctx.emit(w, ("C", (vertex,)))

    jobs = [
        MRJob(
            f"{APP}-build",
            INPUT,
            f"{APP}-cands-2",
            mapper=Mapper(fn=symmetrize),
            reducer=Reducer(fn=build_and_seed, compute_factor=COMPUTE_FACTOR),
            num_reducers=params.hadoop_reducers or None,
        )
    ]

    def make_level_reducer(level: int):
        # Verifies candidate cliques ``base + (w,)`` of size ``level`` and,
        # unless this is the final level, extends them by one vertex.
        final = level == params.k

        def verify_level(ctx, w: int, values: list) -> None:
            adjacency: tuple = ()
            candidates = []
            for tag, payload in values:
                if tag == "A":
                    adjacency = payload
                else:
                    candidates.append(payload)
            adjacency_set = set(adjacency)
            if not final:
                ctx.emit(w, ("A", adjacency))  # graph reshuffles every level
            for base in candidates:
                if any(b not in adjacency_set for b in base):
                    continue
                clique = base + (w,)
                if final:
                    ctx.emit(clique, ("K", 1))
                else:
                    for x in adjacency:
                        if x > w:
                            ctx.emit(x, ("C", clique))

        return verify_level

    for level in range(2, params.k + 1):
        jobs.append(
            MRJob(
                f"{APP}-verify-{level}",
                f"{APP}-cands-{level}",
                f"{APP}-out" if level == params.k else f"{APP}-cands-{level + 1}",
                mapper=Mapper(fn=lambda ctx, k, v: ctx.emit(k, v)),
                reducer=Reducer(fn=make_level_reducer(level), compute_factor=COMPUTE_FACTOR),
                num_reducers=params.hadoop_reducers or None,
            )
        )
    return jobs


def run_hadoop(env: AppEnv, params: KCliquesParams, edges=None) -> AppResult:
    if edges is None:
        edges = generate_input(params)
    env.ingest_dfs(INPUT, edges)
    results = run_chain(env.hadoop, build_hadoop_jobs(params))
    # The build job already emits verified 2-cliques; for k >= 3 the final
    # level's ("K", 1) records are the answer.
    cliques = sorted(
        key for key, value in results[-1].outputs if value[0] == "K"
    )
    metrics: dict[str, float] = {}
    for r in results:
        for k, v in r.metrics.items():
            metrics[k] = metrics.get(k, 0.0) + v
    return AppResult(APP, "hadoop", chain_makespan(results), cliques, metrics=metrics)


# -- reference ---------------------------------------------------------------------------------


def reference(edges: list[tuple[int, int]], k: int) -> list[tuple]:
    """All k-cliques (ascending vertex tuples) by direct enumeration."""
    adjacency: dict[int, set[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)

    cliques: list[tuple] = []

    def extend(clique: tuple, candidates: set[int]) -> None:
        if len(clique) == k:
            cliques.append(clique)
            return
        for w in sorted(candidates):
            if w > clique[-1]:
                extend(clique + (w,), candidates & adjacency[w])

    for vertex in sorted(adjacency):
        extend((vertex,), adjacency[vertex])
    return sorted(cliques)
