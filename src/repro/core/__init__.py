"""The HAMR flowlet engine — the paper's core contribution.

Public surface:

* flowlet types: :class:`Loader`, :class:`Map`, :class:`Reduce`,
  :class:`PartialReduce` (§2's four phase types);
* :class:`FlowletGraph` with :class:`EdgeMode` (shuffle / local /
  broadcast) and per-edge :class:`Combiner`;
* data sources: DFS, node-local files, the KV store, in-memory
  collections, and streaming sources;
* :class:`HamrEngine` / :class:`HamrConfig` / :class:`JobResult`.

Minimal WordCount::

    graph = FlowletGraph("wordcount")
    loader = graph.add(Loader("lines", DFSSource(dfs, "input.txt")))
    tokenize = graph.add(Map("tokenize", fn=lambda ctx, off, line: [
        ctx.emit(w, 1) for w in line.split()]))
    counts = graph.add(PartialReduce("count",
        initial=lambda k: 0, combine=lambda acc, v: acc + v))
    graph.connect(loader, tokenize)
    graph.connect(tokenize, counts)
    result = HamrEngine(cluster).run(graph)
"""

from repro.core.bins import Bin, BinPacker
from repro.core.combiner import Combiner, sum_combiner
from repro.core.context import TaskContext
from repro.core.engine import HamrConfig, HamrEngine, JobResult
from repro.core.flowlet import (
    Flowlet,
    FlowletKind,
    FlowletStatus,
    Loader,
    Map,
    PartialReduce,
    Reduce,
)
from repro.core.graph import Edge, EdgeMode, FlowletGraph
from repro.core.sources import (
    CollectionSource,
    DataSource,
    DFSSource,
    KVStoreSource,
    LocalFSSource,
    PerNodeSource,
    SourceSplit,
)
from repro.core.master import HamrMaster, JobHandle, JobState
from repro.core.streaming import StreamSource, TimedBatch
from repro.core.windows import TumblingWindows

__all__ = [
    "Flowlet",
    "FlowletKind",
    "FlowletStatus",
    "Loader",
    "Map",
    "Reduce",
    "PartialReduce",
    "FlowletGraph",
    "Edge",
    "EdgeMode",
    "Combiner",
    "sum_combiner",
    "Bin",
    "BinPacker",
    "TaskContext",
    "HamrEngine",
    "HamrConfig",
    "JobResult",
    "DataSource",
    "SourceSplit",
    "DFSSource",
    "LocalFSSource",
    "KVStoreSource",
    "CollectionSource",
    "PerNodeSource",
    "StreamSource",
    "TimedBatch",
    "HamrMaster",
    "JobHandle",
    "JobState",
    "TumblingWindows",
]
