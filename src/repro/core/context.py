"""The task context — what user flowlet code sees.

One context exists per (flowlet, node) instance; every fine-grain task of
that instance on that node shares it. User functions are plain callables
(not simulation processes), so the context *buffers* effects: emitted
pairs go into bin packers, disk traffic accumulates as deferred charges —
and the surrounding engine task process pays the accumulated costs and
ships sealed bins at its next yield point. Determinism is preserved
because processes only interleave at yields.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, TYPE_CHECKING

from repro.common.errors import GraphError
from repro.core.bins import Bin, BinPacker
from repro.core.graph import Edge, EdgeMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.core.runtime import FlowletInstance
    from repro.storage.kvstore import KVStore
    from repro.storage.localfs import LocalFS, LocationRef


#: partition id used for bins on BROADCAST edges (expanded to all nodes at ship time)
BROADCAST_PARTITION = -1


class TaskContext:
    """API surface for user code inside flowlet tasks."""

    def __init__(
        self,
        instance: "FlowletInstance",
        node: "Node",
        worker_index: int,
        num_workers: int,
        packer: BinPacker,
        out_edges: list[Edge],
        localfs: Optional["LocalFS"],
        kvstore: Optional["KVStore"],
    ):
        self._instance = instance
        self.node = node
        self.worker_index = worker_index
        self.num_workers = num_workers
        self._packer = packer
        self._out_edges = out_edges
        self._by_name = {e.dst.name: e for e in out_edges}
        self._localfs = localfs
        self._kvstore = kvstore
        # Buffers drained by the engine task process.
        self.sealed_bins: list[Bin] = []
        self.output_pairs: list[tuple[Any, Any]] = []  # sink output (no out-edges)
        self.deferred_disk_bytes: int = 0
        self.deferred_updates: int = 0  # accumulator updates for contention modeling
        self.counters: dict[str, float] = {}

    # -- emission ---------------------------------------------------------------

    def emit(self, key: Any, value: Any, to: Optional[str] = None) -> None:
        """Send a pair downstream.

        With ``to=None`` the pair goes to *every* outbound edge; name a
        downstream flowlet to target one edge. A flowlet with no outbound
        edges is a sink: its pairs become job output (and are charged as a
        local disk write, "finally to disk as output", §3.1).
        """
        if to is not None:
            try:
                edges: Iterable[Edge] = (self._by_name[to],)
            except KeyError:
                raise GraphError(
                    f"{self._instance.flowlet.name!r} has no edge to {to!r}"
                ) from None
        elif self._out_edges:
            edges = self._out_edges
        else:
            self.output_pairs.append((key, value))
            return
        for edge in edges:
            if edge.mode is EdgeMode.SHUFFLE:
                partition = edge.partitioner.partition(key)
            elif edge.mode is EdgeMode.LOCAL:
                partition = self.worker_index
            else:  # BROADCAST
                partition = BROADCAST_PARTITION
            sealed = self._packer.add(edge.edge_id, partition, key, value)
            if sealed is not None:
                self.sealed_bins.append(sealed)

    def broadcast(self, key: Any, value: Any, to: Optional[str] = None) -> None:
        """Explicitly replicate one pair to all workers of the target edge(s).

        Equivalent to emitting on a BROADCAST edge; usable on SHUFFLE edges
        for control data (e.g. K-Means centroid updates, Alg. 1 step 5).
        """
        edges = (
            [self._by_name[to]]
            if to is not None
            else list(self._out_edges)
        )
        if to is not None and to not in self._by_name:
            raise GraphError(f"{self._instance.flowlet.name!r} has no edge to {to!r}")
        for edge in edges:
            sealed = self._packer.add(edge.edge_id, BROADCAST_PARTITION, key, value)
            if sealed is not None:
                self.sealed_bins.append(sealed)

    # -- locality-aware local disk I/O (§3.3) --------------------------------------

    def write_local(self, file_name: str, records: Iterable[Any]) -> "LocationRef":
        """Write records to this node's local disk; returns a small
        :class:`LocationRef` to pass downstream instead of the bulk data."""
        if self._localfs is None:
            raise GraphError("engine was built without a LocalFS")
        ref, nbytes = self._localfs.place(self.node, file_name, records)
        self.deferred_disk_bytes += nbytes
        return ref

    def read_local(self, ref: "LocationRef") -> list[Any]:
        """Resolve a :class:`LocationRef` on its owning node (charged read)."""
        if self._localfs is None:
            raise GraphError("engine was built without a LocalFS")
        records, nbytes = self._localfs.resolve(self.node, ref)
        self.deferred_disk_bytes += nbytes
        return records

    # -- key-value store (§5.2 / §7) --------------------------------------------------

    @property
    def kv(self) -> "KVStore":
        if self._kvstore is None:
            raise GraphError("engine was built without a KVStore")
        return self._kvstore

    def kv_put(self, key: Any, value: Any) -> None:
        """Store in *this node's* shard (shared by all tasks on the node).

        Entries written by an ``aggregated_output`` flowlet are key-space
        bounded and charged unscaled (DESIGN.md §7.1).
        """
        divisor = (
            self.node.cost.scale
            if self._instance.flowlet.aggregated_output
            else 1.0
        )
        self.kv.put(self.node, key, value, size_divisor=divisor)

    def kv_get(self, key: Any, default: Any = None) -> Any:
        return self.kv.get(self.node, key, default)

    # -- misc ------------------------------------------------------------------------------

    def counter(self, name: str, delta: float = 1.0) -> None:
        """Accumulate an application counter (aggregated into JobResult)."""
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def note_update(self, n: int = 1) -> None:
        """Record ``n`` shared-accumulator updates (engine charges contention)."""
        self.deferred_updates += n

    # -- engine-side draining ---------------------------------------------------------------

    def take_sealed(self) -> list[Bin]:
        sealed, self.sealed_bins = self.sealed_bins, []
        return sealed

    def take_deferred_disk(self) -> int:
        nbytes, self.deferred_disk_bytes = self.deferred_disk_bytes, 0
        return nbytes

    def take_deferred_updates(self) -> int:
        n, self.deferred_updates = self.deferred_updates, 0
        return n
