"""The per-node flowlet runtime (§2, Fig. 2).

Each worker node runs a :class:`NodeRuntime` holding an instance of the
*whole* flowlet graph ("the run-time on each node includes the whole
flowlet graph instead of subgraph", §2). Per flowlet instance, a
*dispatcher* process implements the paper's data-driven scheduling rules:

* **Loader** — initially READY; fires one task per assigned input split,
  throttled by the per-node loader-slot resource (the flow-control knob:
  "the number of concurrent loader tasks can be decreased", §2).
* **Map / PartialReduce** — a bin in the inbox makes the flowlet READY;
  each bin enables one fine-grain task, fired "once there is a free thread
  in the thread pool".
* **Reduce** — waits for completion of *all* upstream instances (the
  internal barrier), collecting bins into a grouped store meanwhile and
  spilling to local disk when the memory budget overflows.

Flow control: a sealed bin is shipped to the destination node's bounded
inbox; when the inbox is full, the shipping task *releases its thread* and
reschedules once space frees — the paper's "the flowlet stops the current
execution immediately and will be scheduled in a later time".

Completion messages propagate from loaders downstream node-by-node; an
instance completes when every upstream instance on every node has
completed and its own inbox has drained.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.common.errors import JobError
from repro.core.bins import Bin, BinPacker
from repro.core.context import TaskContext
from repro.dataplane import RecordBatch, chunk_records, pair_nbytes, spill_batch
from repro.core.flowlet import Flowlet, FlowletKind, FlowletStatus, Loader, Map, PartialReduce, Reduce
from repro.core.graph import Edge
from repro.core.sources import SourceSplit
from repro.obs import (
    ATOMIC,
    COMPUTE,
    DISK,
    EDGE_BARRIER,
    EDGE_PRODUCE,
    EDGE_SHUFFLE,
    EDGE_STALL,
    NETWORK,
    STALL,
    telemetry,
)
from repro.obs import hostprof as _hostprof
from repro.sim import QueueClosed, Resource, SerializedCell, SimQueue
from repro.sim.core import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HamrEngine

#: logical size of a completion control message
_COMPLETION_MSG_BYTES = 32


class ThreadLease:
    """A task's hold on one worker-thread slot, releasable mid-task.

    Flow-control stalls release the slot so other READY flowlet tasks can
    run, then reacquire before resuming — the fine-grain rescheduling the
    paper describes.
    """

    def __init__(self, pool: Resource):
        self.pool = pool
        self.held = False

    def acquire(self):
        event = self.pool.acquire()
        event.add_callback(lambda _e: self._mark(True))
        return event

    def release(self) -> None:
        if not self.held:
            raise JobError("releasing a thread lease that is not held")
        self.pool.release()
        self.held = False

    def _mark(self, held: bool) -> None:
        self.held = held


class FlowletInstance:
    """All per-(flowlet, node) state."""

    def __init__(
        self,
        runtime: "NodeRuntime",
        flowlet: Flowlet,
        inbox_capacity: float,
    ):
        self.runtime = runtime
        self.flowlet = flowlet
        self.node = runtime.node
        sim = runtime.sim
        self.status = (
            FlowletStatus.READY
            if flowlet.kind is FlowletKind.LOADER
            else FlowletStatus.DORMANT
        )
        self.inbox = SimQueue(
            sim,
            capacity=inbox_capacity if flowlet.kind is not FlowletKind.LOADER else None,
            name=f"{flowlet.name}@n{self.node.node_id}.inbox",
        )
        self.completion_event = SimEvent(sim, name=f"{flowlet.name}@n{self.node.node_id}.done")
        # Completion bookkeeping: edge_id -> set of sender worker indices seen.
        self.completions_seen: dict[int, set[int]] = {
            e.edge_id: set() for e in runtime.graph.in_edges(flowlet)
        }
        # Reduce state
        self.groups: dict[Any, list[Any]] = {}
        self.group_bytes = 0  # real logical bytes resident in `groups`
        # Raw (pre-division) logical bytes in `groups` since the last
        # spill: the sum of the collected bins' cached sizes, so spilling
        # the grouped store never re-sizes its pairs.
        self.group_raw_bytes = 0
        self.spill_runs: list = []
        # Partial-reduce state
        self.accs: dict[Any, Any] = {}
        self.acc_bytes: dict[Any, int] = {}
        self.acc_spill_runs: list = []
        self.cells: dict[Any, SerializedCell] = {}
        # Shared emission state
        self.packer = BinPacker(
            runtime.cost.bin_size, aggregated=flowlet.aggregated_output
        )
        # Scale-model bookkeeping: True once every inbound bin so far was
        # aggregated (key-space-bounded) data.
        self.input_aggregated: bool | None = None
        self.ctx: Optional[TaskContext] = None
        # Metrics
        self.tasks_run = 0
        self.bins_in = 0
        self.pairs_in = 0
        self.stalls = 0
        self.stall_streak = 0  # consecutive stalls feeding the adaptive throttle
        # Trace bookkeeping (span ids; 0 = none/untraced): the last task
        # span that finished on this instance, and the last reduce-collect
        # span — barrier edges for finalize/reduce hang off these.
        self.last_task_span_id = 0
        self.last_collect_span_id = 0

    # -- completion bookkeeping --------------------------------------------------

    def all_upstream_complete(self) -> bool:
        expected = self.runtime.engine.num_workers
        return all(
            len(seen) >= expected for seen in self.completions_seen.values()
        )

    def note_completion(self, edge_id: int, sender_worker: int) -> None:
        self.completions_seen[edge_id].add(sender_worker)
        if self.all_upstream_complete() and not self.inbox.closed:
            self.inbox.close()

    def cell_for(self, key: Any) -> SerializedCell:
        cell = self.cells.get(key)
        if cell is None:
            cost = self.runtime.cost
            cell = SerializedCell(
                self.runtime.sim,
                update_cost=cost.atomic_update_cost * cost.scale,
                base_cost=cost.atomic_base_cost * cost.scale,
                name=f"{self.flowlet.name}@n{self.node.node_id}.cell",
            )
            self.cells[key] = cell
        return cell


class NodeRuntime:
    """One worker's share of a running HAMR job."""

    def __init__(self, engine: "HamrEngine", worker_index: int):
        self.engine = engine
        self.graph = engine.graph
        self.worker_index = worker_index
        self.node = engine.cluster.worker(worker_index)
        self.sim = engine.cluster.sim
        self.cost = engine.cluster.cost
        self.loader_slots = Resource(
            self.sim, engine.cluster.cost.hamr_loader_slots,
            name=f"n{self.node.node_id}.loader_slots",
        )
        self.obs = self.node.obs
        self.job = engine.graph.name if engine.graph is not None else None
        # Per-node spill manager from the job's shared dataplane pool
        # (the MapReduce baseline draws from the same kind of pool, so
        # spill-file ids and blame attribution line up across engines).
        self.spill = engine.spill_pool.for_node(self.node)
        self.stalls_total = 0  # flow-control stalls by this node's tasks
        # Last task span finished on this node (0 = none): stalled
        # producers blame their wait on the consumer node's most recent
        # task — the one whose completion freed inbox space.
        self.last_task_span_id = 0
        self.instances: dict[str, FlowletInstance] = {}
        # One shared depth observer aggregates every inbox on this node
        # into the telemetry queue-depth track (logical bytes resident).
        inbox_depth = (
            self.obs.timeline.depth_observer(telemetry.QUEUE, self.node.node_id)
            if self.obs.enabled
            else None
        )
        for flowlet in self.graph.flowlets:
            capacity = self._inbox_capacity(flowlet)
            instance = FlowletInstance(self, flowlet, capacity)
            self.instances[flowlet.name] = instance
            if inbox_depth is not None:
                instance.inbox.observer = inbox_depth
        for instance in self.instances.values():
            instance.ctx = TaskContext(
                instance,
                self.node,
                worker_index,
                engine.num_workers,
                instance.packer,
                self._resolved_out_edges(instance.flowlet),
                engine.localfs,
                engine.kvstore,
            )

    def _divisor(self, aggregated: bool) -> float:
        """Cost divisor for aggregated (key-space-bounded) data.

        Such records are charged unscaled: dividing the real quantity by
        the scale factor cancels the multiplier the cost model applies.
        """
        return self.cost.scale if aggregated else 1.0

    def _inbox_capacity(self, flowlet: Flowlet) -> float:
        in_edges = self.graph.in_edges(flowlet)
        caps = [e.capacity for e in in_edges if e.capacity is not None]
        return min(caps) if caps else self.cost.flow_capacity

    def _resolved_out_edges(self, flowlet: Flowlet) -> list[Edge]:
        return self.graph.out_edges(flowlet)

    def instance(self, name: str) -> FlowletInstance:
        return self.instances[name]

    # -- start -----------------------------------------------------------------------

    def start(self) -> list[SimEvent]:
        """Run setup hooks, spawn one dispatcher per instance; returns
        the instances' completion events."""
        events = []
        job = self.job or self.graph.name
        for flowlet in self.graph.topological_order():
            instance = self.instances[flowlet.name]
            flowlet.setup(instance.ctx)
            # one unit of stage work per flowlet instance on this node
            self.obs.progress_total(job, flowlet.name)
            if flowlet.kind is FlowletKind.LOADER:
                dispatcher = self._loader_dispatcher(instance)
            elif flowlet.kind is FlowletKind.REDUCE:
                dispatcher = self._reduce_dispatcher(instance)
            else:
                dispatcher = self._bin_dispatcher(instance)
            self.sim.spawn(
                dispatcher, name=f"{flowlet.name}@n{self.node.node_id}.dispatch"
            )
            events.append(instance.completion_event)
        return events

    # -- loader ------------------------------------------------------------------------

    def _loader_dispatcher(self, instance: FlowletInstance):
        splits = self.engine.splits_for(instance.flowlet, self.worker_index)
        tasks = []
        for split in splits:
            yield self.loader_slots.acquire()
            lease = ThreadLease(self.node.threads)
            yield lease.acquire()
            task = self.sim.spawn(
                self._loader_task(instance, split, lease),
                name=f"{instance.flowlet.name}@n{self.node.node_id}.load{split.split_id}",
            )
            tasks.append(task)
        for task in tasks:
            yield task
        yield from self._complete_instance(instance)

    def _loader_task(self, instance: FlowletInstance, split: SourceSplit, lease: ThreadLease):
        flowlet = instance.flowlet
        assert isinstance(flowlet, Loader)
        obs, sim, node_id = self.obs, self.sim, self.node.node_id
        try:
            with obs.span(
                f"load:{flowlet.name}", "task", node=node_id, job=self.job,
                flowlet=flowlet.name, split=split.split_id,
            ) as lspan:
                reader = split.reader() if hasattr(split, "reader") else None
                while True:
                    t0 = sim.now
                    if reader is not None:
                        records = yield from reader.next_chunk(self.node)
                        if records is None:
                            break
                    else:
                        records = yield from split.read(self.node)
                    if obs.enabled:
                        obs.charge(self.job, DISK, sim.now - t0, node=node_id, span=lspan)
                    yield from self._process_loaded(instance, records, lease, lspan)
                    if reader is None:
                        break
            self._note_task_done(instance, lspan)
        finally:
            lease.release()
            self.loader_slots.release()

    def _process_loaded(self, instance: FlowletInstance, records, lease: ThreadLease, span=None):
        """Run loader user code chunk-by-chunk so output pipelines finely.

        ``records`` may be a plain list or a pre-sized
        :class:`~repro.dataplane.RecordBatch` (a DFS block read) — a batch
        that fits in one loader chunk passes through without re-sizing.
        """
        flowlet = instance.flowlet
        chunks = chunk_records(records, self.engine.config.loader_chunk_bytes)
        obs, sim = self.obs, self.sim
        for batch in chunks:
            instance.tasks_run += 1
            t0 = sim.now
            yield self.node.record_compute(
                batch.nrecords, batch.nbytes, flowlet.compute_factor
            )
            if obs.enabled:
                obs.charge(self.job, COMPUTE, sim.now - t0, node=self.node.node_id, span=span)
            prof = _hostprof.current()
            if prof is None:
                flowlet.load(instance.ctx, batch.records)
            else:
                with prof.scope(_hostprof.ENGINE, f"load:{flowlet.name}"):
                    prof.units(batch.nrecords, batch.nbytes)
                    flowlet.load(instance.ctx, batch.records)
            yield from self._drain_ctx(instance, lease, span)

    # -- map / partial reduce -----------------------------------------------------------

    def _bin_dispatcher(self, instance: FlowletInstance):
        tasks = []
        held_bins = []  # barrier-mode ablation: buffer until upstream completes
        barrier = self.engine.config.barrier_mode
        while True:
            try:
                bin_ = yield instance.inbox.get()
            except QueueClosed:
                break
            instance.status = FlowletStatus.READY
            if barrier:
                held_bins.append(bin_)
                continue
            lease = ThreadLease(self.node.threads)
            yield lease.acquire()
            task = self.sim.spawn(
                self._bin_task(instance, bin_, lease),
                name=f"{instance.flowlet.name}@n{self.node.node_id}.task",
            )
            tasks.append(task)
        for bin_ in held_bins:
            lease = ThreadLease(self.node.threads)
            yield lease.acquire()
            task = self.sim.spawn(
                self._bin_task(instance, bin_, lease),
                name=f"{instance.flowlet.name}@n{self.node.node_id}.task",
            )
            tasks.append(task)
        for task in tasks:
            yield task
        if instance.flowlet.kind is FlowletKind.PARTIAL_REDUCE:
            yield from self._finalize_partial_reduce(instance)
        yield from self._complete_instance(instance)

    def _bin_task(self, instance: FlowletInstance, bin_: Bin, lease: ThreadLease):
        flowlet = instance.flowlet
        instance.tasks_run += 1
        instance.bins_in += 1
        instance.pairs_in += bin_.nrecords
        obs, sim, node_id = self.obs, self.sim, self.node.node_id
        kind = "map" if flowlet.kind is FlowletKind.MAP else "partial_reduce"
        try:
            with obs.span(
                f"{kind}:{flowlet.name}", "task", node=node_id, job=self.job,
                flowlet=flowlet.name, nrecords=bin_.nrecords,
            ) as tspan:
                obs.edge(bin_.trace_src, tspan, EDGE_SHUFFLE)
                # Thread wait-for: the task whose completion freed the
                # worker thread this task queued on. The walk only follows
                # it when it is the binding constraint (latest cut).
                obs.edge(self.last_task_span_id, tspan, EDGE_STALL)
                div = self._divisor(bin_.aggregated)
                t0 = sim.now
                yield self.node.compute(self.cost.bin_overhead)
                yield self.node.record_compute(
                    bin_.nrecords / div, bin_.nbytes / div, flowlet.compute_factor
                )
                if obs.enabled:
                    obs.charge(self.job, COMPUTE, sim.now - t0, node=node_id, span=tspan)
                if flowlet.kind is FlowletKind.MAP:
                    assert isinstance(flowlet, Map)
                    prof = _hostprof.current()
                    if prof is None:
                        for key, value in bin_:
                            flowlet.map(instance.ctx, key, value)
                    else:
                        # host-clock frame around the synchronous user-map
                        # loop only (a scope must never contain a yield)
                        with prof.scope(_hostprof.ENGINE, f"map:{flowlet.name}"):
                            prof.units(bin_.nrecords, bin_.nbytes)
                            for key, value in bin_:
                                flowlet.map(instance.ctx, key, value)
                else:
                    assert isinstance(flowlet, PartialReduce)
                    yield from self._fold_bin(instance, flowlet, bin_, tspan)
                yield from self._drain_ctx(instance, lease, tspan)
            self._note_task_done(instance, tspan)
        finally:
            lease.release()

    def _fold_bin(self, instance: FlowletInstance, flowlet: PartialReduce, bin_: Bin, span=None):
        """Fold one bin into the per-key accumulators, modeling atomic
        contention per touched key and accounting accumulator memory."""
        prof = _hostprof.current()
        if prof is not None:
            prof.push(_hostprof.ENGINE, f"partial_reduce:{flowlet.name}")
            prof.units(bin_.nrecords, bin_.nbytes)
        touched: dict[Any, int] = {}
        for key, value in bin_:
            if key in instance.accs:
                instance.accs[key] = flowlet.combine(instance.accs[key], value)
            else:
                instance.accs[key] = flowlet.combine(flowlet.initial(key), value)
            touched[key] = touched.get(key, 0) + 1
        # Memory delta for touched accumulators; spill everything if over
        # budget. Accumulator stores of aggregated-output flowlets are
        # key-space-bounded, hence charged unscaled.
        acc_div = self._divisor(flowlet.aggregated_output)
        delta = 0
        for key in touched:
            new_size = pair_nbytes(key, instance.accs[key])
            delta += new_size - instance.acc_bytes.get(key, 0)
            instance.acc_bytes[key] = new_size
        if prof is not None:  # frame ends before the first possible yield
            prof.pop()
        if delta > 0 and not self.node.alloc(delta / acc_div):
            yield from self._spill_accumulators(instance, flowlet, extra=delta, span=span)
        # Contended atomic updates serialize per key cell (§5.2); vector
        # accumulators touch `update_weight` cells per folded value. A
        # combined pair carries the update pressure of every record it
        # represents (the paper's Table 3: combining barely relieves the
        # serialized accumulator path).
        in_div = self._divisor(bin_.aggregated)
        pressure = bin_.effective_records / max(1, bin_.nrecords)
        if pressure > 1.0:  # combined input: apply the calibrated relief
            pressure = max(1.0, pressure * (1.0 - self.cost.combiner_update_relief))
        obs, sim = self.obs, self.sim
        t0 = sim.now
        for key in sorted(touched, key=repr):
            n_updates = max(
                1, round(touched[key] * pressure * flowlet.update_weight / in_div)
            )
            yield instance.cell_for(key).update(n_updates)
        if obs.enabled:
            obs.charge(self.job, ATOMIC, sim.now - t0, node=self.node.node_id, span=span)

    def _spill_accumulators(
        self, instance: FlowletInstance, flowlet: PartialReduce, extra: int, span=None
    ):
        # Snapshot and clear synchronously (no yields) so concurrent fold
        # tasks never double-spill or double-free. The per-key size ledger
        # already holds every pair's size, so the spilled batch carries
        # its byte count instead of being re-sized.
        acc_div = self._divisor(flowlet.aggregated_output)
        raw_bytes = sum(instance.acc_bytes.values())
        resident = (raw_bytes - extra) / acc_div
        batch = RecordBatch(
            sorted(instance.accs.items(), key=lambda kv: repr(kv[0])),
            nbytes=raw_bytes,
        )
        instance.accs = {}
        instance.acc_bytes = {}
        if resident > 0:
            self.node.free(resident)
        run = yield from spill_batch(
            self.spill, batch, sorted_by_key=True, parent=span
        )
        instance.acc_spill_runs.append(run)
        self.engine.metrics["acc_spills"] = self.engine.metrics.get("acc_spills", 0) + 1

    def _finalize_partial_reduce(self, instance: FlowletInstance):
        """At upstream completion, emit every accumulator ("the partial
        reduce flowlet does not output until the completion of its
        upstream flowlets", §2)."""
        flowlet = instance.flowlet
        assert isinstance(flowlet, PartialReduce)
        # Merge back any spilled accumulator runs.
        lease = ThreadLease(self.node.threads)
        yield lease.acquire()
        obs, node_id = self.obs, self.node.node_id
        try:
            with obs.span(
                f"finalize:{flowlet.name}", "task", node=node_id, job=self.job,
                flowlet=flowlet.name,
            ) as fspan:
                # Barrier: finalize is gated on upstream completion — the
                # last fold task on this instance is what released it.
                obs.edge(instance.last_task_span_id, fspan, EDGE_BARRIER)
                for run in instance.acc_spill_runs:
                    pairs = yield from self.spill.read_back(run)
                    self.spill.free(run)
                    obs.edge(self.spill.last_span_id, fspan, EDGE_BARRIER)
                    for key, acc in pairs:
                        if key in instance.accs:
                            instance.accs[key] = flowlet.combine(instance.accs[key], acc)
                        else:
                            instance.accs[key] = acc
                acc_div = self._divisor(flowlet.aggregated_output)
                batch = RecordBatch(
                    sorted(instance.accs.items(), key=lambda kv: repr(kv[0]))
                )
                t0 = self.sim.now
                yield self.node.record_compute(
                    batch.nrecords / acc_div, batch.nbytes / acc_div, flowlet.compute_factor
                )
                if obs.enabled:
                    obs.charge(
                        self.job, COMPUTE, self.sim.now - t0, node=node_id, span=fspan
                    )
                prof = _hostprof.current()
                if prof is None:
                    for key, acc in batch:
                        flowlet.finalize(instance.ctx, key, acc)
                else:
                    with prof.scope(_hostprof.ENGINE, f"finalize:{flowlet.name}"):
                        prof.units(batch.nrecords, batch.nbytes)
                        for key, acc in batch:
                            flowlet.finalize(instance.ctx, key, acc)
                resident = sum(instance.acc_bytes.values()) / acc_div
                if resident > 0:
                    self.node.free(resident)
                instance.accs.clear()
                instance.acc_bytes.clear()
                yield from self._drain_ctx(instance, lease, fspan)
            self._note_task_done(instance, fspan)
        finally:
            lease.release()

    # -- reduce ---------------------------------------------------------------------------

    def _reduce_dispatcher(self, instance: FlowletInstance):
        # Collection is concurrent: each arriving bin enables one fine-grain
        # collect task on a free thread (the node's tasks share the grouped
        # store, "one JVM per node ... all tasks can share memory", §5.2).
        tasks = []
        while True:
            try:
                bin_ = yield instance.inbox.get()
            except QueueClosed:
                break
            lease = ThreadLease(self.node.threads)
            yield lease.acquire()
            task = self.sim.spawn(
                self._collect_task(instance, bin_, lease),
                name=f"{instance.flowlet.name}@n{self.node.node_id}.collect",
            )
            tasks.append(task)
        for task in tasks:
            yield task
        # Barrier satisfied: all upstream complete, inbox drained.
        instance.status = FlowletStatus.READY
        yield from self._execute_reduce(instance)
        yield from self._complete_instance(instance)

    def _collect_task(self, instance: FlowletInstance, bin_: Bin, lease: ThreadLease):
        obs, node_id = self.obs, self.node.node_id
        try:
            with obs.span(
                f"collect:{instance.flowlet.name}", "task", node=node_id,
                job=self.job, flowlet=instance.flowlet.name, nrecords=bin_.nrecords,
            ) as cspan:
                obs.edge(bin_.trace_src, cspan, EDGE_SHUFFLE)
                obs.edge(self.last_task_span_id, cspan, EDGE_STALL)
                yield from self._collect_bin(instance, bin_, cspan)
            self._note_task_done(instance, cspan)
            if cspan.span_id:
                instance.last_collect_span_id = cspan.span_id
        finally:
            lease.release()

    def _collect_bin(self, instance: FlowletInstance, bin_: Bin, span=None):
        """Group one bin's pairs by key in memory, spilling when over budget."""
        instance.bins_in += 1
        instance.pairs_in += bin_.nrecords
        instance.tasks_run += 1
        if instance.input_aggregated is None:
            instance.input_aggregated = bin_.aggregated
        else:
            instance.input_aggregated = instance.input_aggregated and bin_.aggregated
        div = self._divisor(bin_.aggregated)
        adj_bytes = bin_.nbytes / div
        t0 = self.sim.now
        yield self.node.compute(self.cost.bin_overhead)
        yield self.node.record_compute(
            bin_.nrecords / div, adj_bytes, self.cost.reduce_collect_factor
        )
        if self.obs.enabled:
            self.obs.charge(self.job, COMPUTE, self.sim.now - t0, node=self.node.node_id, span=span)
        if not self.node.alloc(adj_bytes):
            yield from self._spill_groups(instance, span)
            if not self.node.alloc(adj_bytes):
                # Even an empty store cannot hold this bin (scaled size over
                # budget): stream it straight to disk as its own run; the
                # bin's cached size rides along (sorting doesn't change it).
                batch = RecordBatch(
                    sorted(bin_.pairs, key=lambda kv: repr(kv[0])),
                    nbytes=bin_.nbytes,
                )
                run = yield from spill_batch(
                    self.spill, batch, sorted_by_key=True, parent=span
                )
                instance.spill_runs.append(run)
                self.engine.metrics["reduce_spills"] = (
                    self.engine.metrics.get("reduce_spills", 0) + 1
                )
                return
        instance.group_bytes += adj_bytes
        instance.group_raw_bytes += bin_.nbytes
        prof = _hostprof.current()
        if prof is None:
            for key, value in bin_:
                instance.groups.setdefault(key, []).append(value)
        else:
            with prof.scope(_hostprof.ENGINE, f"collect:{instance.flowlet.name}"):
                prof.units(bin_.nrecords, bin_.nbytes)
                for key, value in bin_:
                    instance.groups.setdefault(key, []).append(value)

    def _spill_groups(self, instance: FlowletInstance, span=None):
        # Snapshot and clear synchronously (no yields) so concurrent
        # collect tasks never double-spill or double-free. The grouped
        # store's raw byte count was accumulated bin-by-bin at collect
        # time, so the spilled batch is never re-sized.
        pairs = []
        for key in sorted(instance.groups, key=repr):
            for value in instance.groups[key]:
                pairs.append((key, value))
        if not pairs:
            return
        freed = instance.group_bytes
        raw_bytes = instance.group_raw_bytes
        instance.group_bytes = 0
        instance.group_raw_bytes = 0
        instance.groups = {}
        self.node.free(freed)
        run = yield from spill_batch(
            self.spill,
            RecordBatch(pairs, nbytes=raw_bytes),
            sorted_by_key=True,
            parent=span,
        )
        instance.spill_runs.append(run)
        self.engine.metrics["reduce_spills"] = self.engine.metrics.get("reduce_spills", 0) + 1

    def _execute_reduce(self, instance: FlowletInstance):
        flowlet = instance.flowlet
        assert isinstance(flowlet, Reduce)
        # Barrier dependencies for the reduce tasks: the last collect on
        # this instance (which drained the inbox) plus every spill
        # read-back the merge performs below.
        deps = [instance.last_collect_span_id]
        # External merge: stream spilled runs back into the grouped store.
        for run in instance.spill_runs:
            pairs = yield from self.spill.read_back(run)
            self.spill.free(run)
            deps.append(self.spill.last_span_id)
            for key, value in pairs:
                instance.groups.setdefault(key, []).append(value)
        instance.spill_runs = []
        # Fine-grain execution: chunk the key space into tasks. Each
        # key's group is sized exactly once here; the chunk carries its
        # record/byte totals so reduce tasks never re-size their input.
        keys = sorted(instance.groups, key=repr)
        chunk_limit = self.engine.config.reduce_task_bytes
        chunks: list[tuple[list[Any], int, int]] = []  # (keys, nrecords, nbytes)
        chunk: list[Any] = []
        nrecords = 0
        size = 0
        for key in keys:
            values = instance.groups[key]
            kv_bytes = sum(pair_nbytes(key, v) for v in values)
            chunk.append(key)
            nrecords += len(values)
            size += kv_bytes
            if size >= chunk_limit:
                chunks.append((chunk, nrecords, size))
                chunk, nrecords, size = [], 0, 0
        if chunk:
            chunks.append((chunk, nrecords, size))
        tasks = []
        for chunk_info in chunks:
            lease = ThreadLease(self.node.threads)
            yield lease.acquire()
            task = self.sim.spawn(
                self._reduce_task(instance, chunk_info, lease, deps),
                name=f"{flowlet.name}@n{self.node.node_id}.reduce",
            )
            tasks.append(task)
        for task in tasks:
            yield task
        # Release the grouped store.
        if instance.group_bytes > 0:
            self.node.free(instance.group_bytes)
            instance.group_bytes = 0
        instance.groups = {}

    def _reduce_task(
        self,
        instance: FlowletInstance,
        chunk_info: tuple[list, int, int],
        lease: ThreadLease,
        deps=(),
    ):
        flowlet = instance.flowlet
        assert isinstance(flowlet, Reduce)
        instance.tasks_run += 1
        keys, nrecords, nbytes = chunk_info
        obs, sim, node_id = self.obs, self.sim, self.node.node_id
        try:
            with obs.span(
                f"reduce:{flowlet.name}", "task", node=node_id, job=self.job,
                flowlet=flowlet.name, nkeys=len(keys),
            ) as rspan:
                for dep in deps:
                    obs.edge(dep, rspan, EDGE_BARRIER)
                div = self._divisor(bool(instance.input_aggregated))
                t0 = sim.now
                yield self.node.record_compute(
                    nrecords / div, nbytes / div, flowlet.compute_factor
                )
                if obs.enabled:
                    obs.charge(self.job, COMPUTE, sim.now - t0, node=node_id, span=rspan)
                prof = _hostprof.current()
                if prof is None:
                    for key in keys:
                        flowlet.reduce(instance.ctx, key, instance.groups[key])
                else:
                    with prof.scope(_hostprof.ENGINE, f"reduce:{flowlet.name}"):
                        prof.units(nrecords, nbytes)
                        for key in keys:
                            flowlet.reduce(instance.ctx, key, instance.groups[key])
                yield from self._drain_ctx(instance, lease, rspan)
            self._note_task_done(instance, rspan)
        finally:
            lease.release()

    # -- shipping & context draining --------------------------------------------------------

    def _note_task_done(self, instance: FlowletInstance, span) -> None:
        """Record the last finished task span (instance- and node-level)."""
        span_id = getattr(span, "span_id", 0)
        if span_id:
            instance.last_task_span_id = span_id
            self.last_task_span_id = span_id

    def _drain_ctx(
        self, instance: FlowletInstance, lease: Optional[ThreadLease] = None, span=None
    ):
        """Pay deferred charges and ship sealed bins out of the context."""
        ctx = instance.ctx
        obs, sim = self.obs, self.sim
        disk_bytes = ctx.take_deferred_disk()
        if disk_bytes:
            t0 = sim.now
            yield self.node.disk_write(disk_bytes)
            if obs.enabled:
                obs.charge(self.job, DISK, sim.now - t0, node=self.node.node_id, span=span)
        updates = ctx.take_deferred_updates()
        if updates:
            t0 = sim.now
            yield instance.cell_for("__shared__").update(updates)
            if obs.enabled:
                obs.charge(self.job, ATOMIC, sim.now - t0, node=self.node.node_id, span=span)
        for bin_ in ctx.take_sealed():
            yield from self._ship(instance, bin_, lease, span)
        yield from self._flush_sink_output(instance, span)

    def _flush_sink_output(self, instance: FlowletInstance, span=None):
        ctx = instance.ctx
        if not ctx.output_pairs:
            return
        pairs, ctx.output_pairs = ctx.output_pairs, []
        div = self._divisor(instance.flowlet.aggregated_output)
        nbytes = RecordBatch(pairs).nbytes / div
        if self.engine.config.charge_sink_disk:
            obs, sim = self.obs, self.sim
            t0 = sim.now
            yield self.node.compute(self.cost.serde_cost(nbytes))
            t1 = sim.now
            yield self.node.disk_write(nbytes)
            if obs.enabled:
                obs.charge(self.job, COMPUTE, t1 - t0, node=self.node.node_id, span=span)
                obs.charge(self.job, DISK, sim.now - t1, node=self.node.node_id, span=span)
        self.engine.collect_output(instance.flowlet.name, pairs)

    def _ship(
        self,
        instance: FlowletInstance,
        bin_: Bin,
        lease: Optional[ThreadLease],
        span=None,
    ):
        """Send one sealed bin to its destination inbox(es), with flow control."""
        edge = self.graph.edges[bin_.edge_id]
        obs, sim, node_id = self.obs, self.sim, self.node.node_id
        if edge.combiner is not None and self.engine.config.use_combiners:
            prof = _hostprof.current()
            if prof is None:
                combined = edge.combiner.apply(bin_.pairs)
            else:
                with prof.scope(
                    _hostprof.ENGINE, f"combine:{instance.flowlet.name}"
                ):
                    prof.units(bin_.nrecords, bin_.nbytes)
                    combined = edge.combiner.apply(bin_.pairs)
            in_div = self._divisor(bin_.aggregated)
            t0 = sim.now
            yield self.node.record_compute(
                bin_.nrecords / in_div, bin_.nbytes / in_div, 0.5
            )
            if obs.enabled:
                obs.charge(self.job, COMPUTE, sim.now - t0, node=node_id, span=span)
            new_bin = Bin(
                bin_.edge_id,
                bin_.partition,
                aggregated=bin_.aggregated,  # combining does not change scaling
                represents=bin_.effective_records,
            )
            for key, value in combined:
                new_bin.append(key, value)
            bin_ = new_bin
        ship_div = self._divisor(bin_.aggregated)
        fabric = self.engine.fabric_for(edge)
        plan = fabric.plan(
            edge.mode.value,
            bin_.partition,
            worker_index=self.worker_index,
            num_workers=self.engine.num_workers,
            owner_of=lambda p: self.engine.worker_index_of(
                self.engine.cluster.owner_of_partition(
                    p, edge.partitioner.num_partitions
                )
            ),
            nbytes=bin_.nbytes / ship_div,
            nrecords=bin_.nrecords,
            records=bin_.pairs,
            aggregated=bin_.aggregated,
            stream=bin_.edge_id,
        )
        if obs.enabled:
            # HAMR charges the exchange at plan time (the historical
            # exchange_targets charge site), before serde.
            fabric.charge(
                plan,
                obs.traffic(self.job or ""),
                node_of=lambda w: self.engine.runtimes[w].node.node_id,
                scale=self.cost.scaled_bytes,
            )
        # Serialization cost once (broadcast reuses the wire image).
        if fabric.serde_factor:
            t0 = sim.now
            yield self.node.compute(
                self.cost.serde_cost(bin_.nbytes / ship_div) * fabric.serde_factor
            )
            if obs.enabled:
                obs.charge(self.job, COMPUTE, sim.now - t0, node=node_id, span=span)
        if self.engine.config.stage_edges_on_disk:
            t0 = sim.now
            yield self.node.disk_write(bin_.nbytes / ship_div)
            if obs.enabled:
                obs.charge(self.job, DISK, sim.now - t0, node=node_id, span=span)
        for delivery in plan.deliveries:
            dst_runtime = self.engine.runtimes[delivery.target]
            dst_instance = dst_runtime.instance(edge.dst.name)
            if self.engine.config.stage_edges_on_disk:
                t0 = sim.now
                yield self.node.disk_read(bin_.nbytes / ship_div)
                if obs.enabled:
                    obs.charge(self.job, DISK, sim.now - t0, node=node_id, span=span)
            with obs.span(
                "ship", "shuffle", node=node_id, job=self.job,
                flowlet=instance.flowlet.name, dst_node=dst_runtime.node.node_id,
                nbytes=bin_.nbytes,
            ) as ship_span:
                # Bins drained at instance completion carry no enclosing task
                # span; the instance's last task is what produced their data.
                obs.edge(
                    span if span is not None else instance.last_task_span_id,
                    ship_span, EDGE_PRODUCE,
                )
                t0 = sim.now
                for hop in delivery.hops:
                    yield self.engine.cluster.network.send(
                        self.engine.runtimes[hop.src].node,
                        self.engine.runtimes[hop.dst].node,
                        hop.nbytes,
                    )
                if obs.enabled:
                    obs.charge(self.job, NETWORK, sim.now - t0, node=node_id, span=ship_span)
            if ship_span.span_id:
                bin_.trace_src = ship_span.span_id
            self.engine.metrics["bins_shipped"] = self.engine.metrics.get("bins_shipped", 0) + 1
            if not dst_instance.inbox.try_put(bin_, weight=bin_.nbytes):
                # Flow control: stop immediately, free the thread, resume later.
                instance.stalls += 1
                self.stalls_total += 1
                self.engine.metrics["flow_stalls"] = (
                    self.engine.metrics.get("flow_stalls", 0) + 1
                )
                self.node.record_trace(
                    "flow_stall", flowlet=instance.flowlet.name, dst=edge.dst.name
                )
                obs.count("flow.stalls", node=node_id)
                with obs.span(
                    "stall", "stall", node=node_id, job=self.job,
                    flowlet=instance.flowlet.name, dst=edge.dst.name,
                ):
                    t0 = sim.now
                    if lease is not None and lease.held:
                        lease.release()
                        yield dst_instance.inbox.put(bin_, weight=bin_.nbytes)
                        yield from self._maybe_throttle_loader(instance)
                        yield lease.acquire()
                    else:
                        yield dst_instance.inbox.put(bin_, weight=bin_.nbytes)
                        yield from self._maybe_throttle_loader(instance)
                    if obs.enabled:
                        obs.charge(self.job, STALL, sim.now - t0, node=node_id, span=span)
                # Wait-for: the stalled producer resumed because the consumer
                # node freed inbox space — its most recent finished task is
                # the cause.
                obs.edge(dst_runtime.last_task_span_id, span, EDGE_STALL)
            else:
                instance.stall_streak = 0

    def _maybe_throttle_loader(self, instance: FlowletInstance):
        """Adaptive flow control (§2): once a loader's ships have stalled
        ``throttle_stall_threshold`` times in a row, slow the intake by
        backing off before resuming (thread already released by caller)."""
        config = self.engine.config
        if not config.adaptive_loader_throttle:
            return
        if instance.flowlet.kind is not FlowletKind.LOADER:
            return
        instance.stall_streak += 1
        if instance.stall_streak < config.throttle_stall_threshold:
            return
        instance.stall_streak = 0
        self.node.record_trace("loader_throttle", flowlet=instance.flowlet.name)
        self.engine.metrics["loader_throttles"] = (
            self.engine.metrics.get("loader_throttles", 0) + 1
        )
        yield self.sim.timeout(config.throttle_backoff)

    # -- completion ---------------------------------------------------------------------------

    def _complete_instance(self, instance: FlowletInstance):
        """Flush open bins, notify downstream on every node, finish."""
        for bin_ in instance.packer.drain():
            yield from self._ship(instance, bin_, None)
        yield from self._drain_ctx(instance)
        instance.flowlet.teardown(instance.ctx)
        self.engine.collect_counters(instance.ctx)
        instance.status = FlowletStatus.COMPLETE
        out_edges = self.graph.out_edges(instance.flowlet)
        notifications = []
        for edge in out_edges:
            for target in range(self.engine.num_workers):
                dst_runtime = self.engine.runtimes[target]
                notifications.append(
                    self.engine.cluster.network.send(
                        self.node, dst_runtime.node, _COMPLETION_MSG_BYTES
                    )
                )
        if notifications:
            yield self.sim.all_of(notifications)
        for edge in out_edges:
            for target in range(self.engine.num_workers):
                self.engine.runtimes[target].instance(edge.dst.name).note_completion(
                    edge.edge_id, self.worker_index
                )
        self.obs.progress_done(self.job or self.graph.name, instance.flowlet.name)
        instance.completion_event.trigger(instance.flowlet.name)
