"""Streaming sources.

HAMR "naturally supports streaming and real-time computing" (§1) with the
same programming and processing model — the Lambda-architecture pitch. A
:class:`StreamSource` feeds loader flowlets batches that *arrive over
virtual time*; the engine's loader tasks consume each batch as it lands
and the downstream DAG processes it incrementally, exactly as for batch
inputs. The stream ends when its schedule is exhausted (tests/examples) —
an unbounded deployment would simply keep appending batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import ConfigError
from repro.common.sizeof import logical_sizeof
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.core.sources import DataSource, SourceSplit


@dataclass(frozen=True)
class TimedBatch:
    """A batch of records that becomes available at ``time`` (virtual s)."""

    time: float
    records: tuple

    @staticmethod
    def make(time: float, records: Sequence[Any]) -> "TimedBatch":
        return TimedBatch(time, tuple(records))


class _StreamReader:
    """Pull interface used by loader tasks: one call per arriving batch."""

    def __init__(self, batches: list[TimedBatch]):
        self._batches = batches
        self._cursor = 0

    def next_chunk(self, node: Node):
        if self._cursor >= len(self._batches):
            if False:  # pragma: no cover - generator protocol
                yield None
            return None
        batch = self._batches[self._cursor]
        self._cursor += 1
        wait = batch.time - node.sim.now
        if wait > 0:
            yield node.sim.timeout(wait)
        return list(batch.records)


class _StreamSplit(SourceSplit):
    def __init__(self, split_id: int, preferred: list[int], batches: list[TimedBatch]):
        nrecords = sum(len(b.records) for b in batches)
        nbytes = sum(logical_sizeof(r) for b in batches for r in b.records)
        super().__init__(split_id, preferred, nrecords, nbytes)
        self._batches = batches

    def reader(self) -> _StreamReader:
        return _StreamReader(self._batches)

    def read(self, node: Node):  # pragma: no cover - loader uses reader()
        if False:
            yield None
        return [r for b in self._batches for r in b.records]


class StreamSource(DataSource):
    """A message-broker-like source: per-partition timed batches.

    ``batches`` is a list of :class:`TimedBatch` in non-decreasing time
    order; they are spread over ``partitions`` stream partitions, each
    becoming one loader split pinned round-robin to a worker (like Kafka
    partitions with sticky consumers).
    """

    def __init__(self, batches: Sequence[TimedBatch], partitions: int = 0):
        self.batches = list(batches)
        if any(
            self.batches[i].time > self.batches[i + 1].time
            for i in range(len(self.batches) - 1)
        ):
            raise ConfigError("stream batches must be in non-decreasing time order")
        self.partitions = partitions

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        nparts = self.partitions or cluster.num_workers
        shards: list[list[TimedBatch]] = [[] for _ in range(nparts)]
        for i, batch in enumerate(self.batches):
            shards[i % nparts].append(batch)
        out = []
        for i, shard in enumerate(shards):
            preferred = [cluster.workers[i % cluster.num_workers].node_id]
            out.append(_StreamSplit(i, preferred, shard))
        return out
