"""Data sources for loader flowlets.

"The loader flowlet tasks work to pull directly from multiple data sources
simultaneously. The data sources include but are not limited to HDFS,
HBase, local disks, distributed file system, relational database, NoSQL
database, message broker, and other structured data sources" (§2).

A source exposes :class:`SourceSplit` objects — the unit of loader-task
parallelism — each with locality hints and a charged ``read`` process.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.common.errors import StorageError
from repro.common.sizeof import logical_sizeof
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.storage.dfs import DFS
from repro.storage.kvstore import KVStore
from repro.storage.localfs import LocalFS


class SourceSplit:
    """One independently loadable chunk of input."""

    def __init__(
        self,
        split_id: int,
        preferred_nodes: Sequence[int],
        nrecords: int,
        nbytes: int,
    ):
        self.split_id = split_id
        self.preferred_nodes = list(preferred_nodes)
        self.nrecords = nrecords
        self.nbytes = nbytes

    def read(self, node: Node):
        """Simulation process yielding cost events; returns the records."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SourceSplit {self.split_id} pref={self.preferred_nodes}>"


class DataSource:
    """Produces the splits a loader flowlet will pull."""

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        raise NotImplementedError


# -- DFS ------------------------------------------------------------------------


class _DFSSplit(SourceSplit):
    def __init__(self, split_id: int, dfs: DFS, block) -> None:
        super().__init__(split_id, block.replica_nodes, block.nrecords, block.nbytes)
        self._dfs = dfs
        self._block = block

    def read(self, node: Node):
        records = yield from self._dfs.read_block(self._block, node)
        return records


class DFSSource(DataSource):
    """Reads a DFS file block-by-block with replica locality."""

    def __init__(self, dfs: DFS, file_name: str):
        self.dfs = dfs
        self.file_name = file_name

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        file = self.dfs.get_file(self.file_name)
        return [_DFSSplit(i, self.dfs, block) for i, block in enumerate(file.blocks)]


# -- local disks -------------------------------------------------------------------


class _LocalSplit(SourceSplit):
    def __init__(
        self,
        split_id: int,
        fs: LocalFS,
        node_id: int,
        name: str,
        offset: int,
        length: int,
    ):
        file = fs.get_file(node_id, name)
        from repro.common.sizeof import logical_sizeof as _sizeof

        records = file.records[offset : offset + length]
        nbytes = sum(_sizeof(r) for r in records)
        super().__init__(split_id, [node_id], len(records), nbytes)
        self._fs = fs
        self._name = name
        self._node_id = node_id
        self._offset = offset
        self._length = length

    def read(self, node: Node):
        if node.node_id != self._node_id:
            raise StorageError(
                f"local split for node {self._node_id} read on node {node.node_id}"
            )
        from repro.storage.localfs import LocationRef

        ref = LocationRef(self._node_id, self._name, self._offset, self._length)
        records = yield from self._fs.read_ref(node, ref)
        return records


class LocalFSSource(DataSource):
    """Splits per worker over a node-local file of the given name (§5.1:
    HAMR's input "is distributed between the local disks of each node").

    ``splits_per_node`` slices each node's file into several splits so
    loader parallelism can use the per-node loader slots.
    """

    def __init__(self, fs: LocalFS, file_name: str, splits_per_node: int = 8):
        if splits_per_node <= 0:
            raise ValueError("splits_per_node must be positive")
        self.fs = fs
        self.file_name = file_name
        self.splits_per_node = splits_per_node

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        out: list[SourceSplit] = []
        for worker in cluster.workers:
            if not self.fs.exists(worker, self.file_name):
                continue
            file = self.fs.get_file(worker.node_id, self.file_name)
            n = file.nrecords
            k = min(self.splits_per_node, max(1, n))
            base, extra = divmod(n, k)
            offset = 0
            for i in range(k):
                length = base + (1 if i < extra else 0)
                if length == 0 and offset > 0:
                    continue
                out.append(
                    _LocalSplit(len(out), self.fs, worker.node_id, self.file_name, offset, length)
                )
                offset += length
        if not out:
            raise StorageError(f"no node holds local file {self.file_name!r}")
        return out


# -- key-value store ------------------------------------------------------------------


class _KVSplit(SourceSplit):
    def __init__(
        self,
        split_id: int,
        store: KVStore,
        node_id: int,
        stripe: int,
        stripes: int,
        nrecords: int,
        nbytes: int,
    ):
        super().__init__(split_id, [node_id], nrecords, nbytes)
        self._store = store
        self._node_id = node_id
        self._stripe = stripe
        self._stripes = stripes

    def read(self, node: Node):
        if node.node_id != self._node_id:
            raise StorageError("KV store shards must be read on their own node")
        # In-memory: no disk or network charge; CPU is charged by the loader task.
        if False:  # pragma: no cover - makes this function a generator
            yield None
        items = list(self._store.items(node))
        return items[self._stripe :: self._stripes]


class KVStoreSource(DataSource):
    """Reads each worker's shard in place — PageRank's EdgeLoader (Alg. 2
    step 7) loads adjacency lists "from memory" instead of from disk.

    Each shard is striped into ``splits_per_node`` loader splits so the
    in-memory scan parallelizes over the node's loader slots.
    """

    def __init__(self, store: KVStore, splits_per_node: int = 8):
        if splits_per_node <= 0:
            raise ValueError("splits_per_node must be positive")
        self.store = store
        self.splits_per_node = splits_per_node

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        out = []
        for worker in cluster.workers:
            n = self.store.local_size(worker)
            stripes = min(self.splits_per_node, max(1, n))
            nbytes = int(self.store.local_bytes(worker))
            for stripe in range(stripes):
                stripe_records = len(range(stripe, n, stripes))
                out.append(
                    _KVSplit(
                        len(out),
                        self.store,
                        worker.node_id,
                        stripe,
                        stripes,
                        stripe_records,
                        nbytes // stripes if stripes else nbytes,
                    )
                )
        return out


# -- in-memory collections (tests, drivers, streaming feeds) -----------------------------


class _CollectionSplit(SourceSplit):
    def __init__(self, split_id: int, preferred: Sequence[int], records: list[Any]):
        nbytes = sum(logical_sizeof(r) for r in records)
        super().__init__(split_id, preferred, len(records), nbytes)
        self._records = records

    def read(self, node: Node):
        if False:  # pragma: no cover - makes this function a generator
            yield None
        return list(self._records)


class CollectionSource(DataSource):
    """An in-memory collection chunked round-robin across workers.

    No disk charge on read (the data is wherever the driver put it);
    useful for unit tests and driver-fed iterations.
    """

    def __init__(self, records: Iterable[Any], splits_per_worker: int = 1):
        self.records = list(records)
        if splits_per_worker <= 0:
            raise ValueError("splits_per_worker must be positive")
        self.splits_per_worker = splits_per_worker

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        nsplits = max(1, cluster.num_workers * self.splits_per_worker)
        chunks: list[list[Any]] = [[] for _ in range(nsplits)]
        for i, record in enumerate(self.records):
            chunks[i % nsplits].append(record)
        out = []
        for i, chunk in enumerate(chunks):
            preferred = [cluster.workers[i % cluster.num_workers].node_id]
            out.append(_CollectionSplit(i, preferred, chunk))
        return out


class PerNodeSource(DataSource):
    """Explicit per-worker record lists (driver-placed data)."""

    def __init__(self, by_node: dict[int, list[Any]]):
        self.by_node = by_node

    def splits(self, cluster: Cluster) -> list[SourceSplit]:
        worker_ids = {w.node_id for w in cluster.workers}
        unknown = set(self.by_node) - worker_ids
        if unknown:
            raise StorageError(f"PerNodeSource names non-worker nodes: {sorted(unknown)}")
        return [
            _CollectionSplit(i, [node_id], records)
            for i, (node_id, records) in enumerate(sorted(self.by_node.items()))
        ]
