"""Per-edge combiners.

A combiner pre-aggregates an outgoing bin's pairs by key on the producing
node before shuffle — Hadoop's classic optimization. Table 3 of the paper
studies combiners on HAMR's histogram benchmarks: they shrink shuffled
volume only modestly there (data already flows in memory) but relieve
flow control, which is why HistogramRatings gains more than
HistogramMovies.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.common.errors import ConfigError


class Combiner:
    """Fold pairs key-wise: ``initial(key)`` then ``combine(acc, value)``.

    ``emit_value(acc)`` converts an accumulator back into an output value
    (identity by default).
    """

    def __init__(
        self,
        initial: Callable[[Any], Any],
        combine: Callable[[Any, Any], Any],
        emit_value: Optional[Callable[[Any], Any]] = None,
    ):
        if initial is None or combine is None:
            raise ConfigError("combiner needs both initial and combine functions")
        self.initial = initial
        self.combine = combine
        self.emit_value = emit_value or (lambda acc: acc)

    def apply(self, pairs: Iterable[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        """Combine a batch of pairs; output order follows first occurrence."""
        accs: dict[Any, Any] = {}
        for key, value in pairs:
            if key in accs:
                accs[key] = self.combine(accs[key], value)
            else:
                accs[key] = self.combine(self.initial(key), value)
        return [(key, self.emit_value(acc)) for key, acc in accs.items()]


def sum_combiner() -> Combiner:
    """The ubiquitous count/sum combiner."""
    return Combiner(initial=lambda _key: 0, combine=lambda acc, v: acc + v)
