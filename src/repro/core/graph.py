"""The flowlet DAG.

"Multiple flowlets in a single HAMR job are organized as a Directed
Acyclic Graph to represent a complex workflow" (§2): arbitrary fan-in and
fan-out, any flowlet type connecting to any other, loaders at the roots.

Edges carry the data-movement policy:

* ``SHUFFLE`` — pairs are partitioned by key across the cluster (the
  default, Hadoop-like);
* ``LOCAL`` — pairs stay on the producing node (locality-aware pipelines,
  §3.3);
* ``BROADCAST`` — every pair is replicated to the flowlet instance on
  every worker (K-Means centroid redistribution, Alg. 1 step 5).

plus an optional per-edge combiner and partitioner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import GraphError
from repro.common.partitioner import Partitioner
from repro.core.combiner import Combiner
from repro.core.flowlet import Flowlet, FlowletKind


class EdgeMode(enum.Enum):
    SHUFFLE = "shuffle"
    LOCAL = "local"
    BROADCAST = "broadcast"


@dataclass
class Edge:
    """A directed data channel between two flowlets."""

    edge_id: int
    src: Flowlet
    dst: Flowlet
    mode: EdgeMode = EdgeMode.SHUFFLE
    partitioner: Optional[Partitioner] = None  # engine fills the default in
    combiner: Optional[Combiner] = None
    #: inbound bin-queue capacity at each node, in modeled bytes (None = engine default)
    capacity: Optional[float] = None
    #: exchange fabric for this edge (None = engine default; see
    #: ``repro.dataplane.fabrics.FABRICS``)
    fabric: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Edge {self.src.name}->{self.dst.name} {self.mode.value}>"


class FlowletGraph:
    """A validated DAG of flowlets — one HAMR job."""

    def __init__(self, name: str = "job"):
        self.name = name
        self._flowlets: dict[str, Flowlet] = {}
        self._edges: list[Edge] = []

    # -- construction -----------------------------------------------------------

    def add(self, flowlet: Flowlet) -> Flowlet:
        if flowlet.name in self._flowlets:
            raise GraphError(f"duplicate flowlet name {flowlet.name!r}")
        self._flowlets[flowlet.name] = flowlet
        return flowlet

    def connect(
        self,
        src: Flowlet | str,
        dst: Flowlet | str,
        mode: EdgeMode = EdgeMode.SHUFFLE,
        partitioner: Optional[Partitioner] = None,
        combiner: Optional[Combiner] = None,
        capacity: Optional[float] = None,
        fabric: Optional[str] = None,
    ) -> Edge:
        src_f = self._resolve(src)
        dst_f = self._resolve(dst)
        if dst_f.kind is FlowletKind.LOADER:
            raise GraphError(f"loader {dst_f.name!r} cannot have inbound edges")
        if any(e.src is src_f and e.dst is dst_f for e in self._edges):
            raise GraphError(f"duplicate edge {src_f.name}->{dst_f.name}")
        edge = Edge(
            len(self._edges), src_f, dst_f, mode, partitioner, combiner, capacity, fabric
        )
        self._edges.append(edge)
        return edge

    def _resolve(self, flowlet: Flowlet | str) -> Flowlet:
        if isinstance(flowlet, str):
            try:
                return self._flowlets[flowlet]
            except KeyError:
                raise GraphError(f"unknown flowlet {flowlet!r}") from None
        if flowlet.name not in self._flowlets or self._flowlets[flowlet.name] is not flowlet:
            raise GraphError(f"flowlet {flowlet.name!r} not added to this graph")
        return flowlet

    # -- accessors ------------------------------------------------------------------

    @property
    def flowlets(self) -> list[Flowlet]:
        return list(self._flowlets.values())

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges)

    def flowlet(self, name: str) -> Flowlet:
        try:
            return self._flowlets[name]
        except KeyError:
            raise GraphError(f"unknown flowlet {name!r}") from None

    def loaders(self) -> list[Flowlet]:
        return [f for f in self._flowlets.values() if f.kind is FlowletKind.LOADER]

    def sinks(self) -> list[Flowlet]:
        """Flowlets with no outbound edges — their emits become job output."""
        sources = {e.src.name for e in self._edges}
        return [f for f in self._flowlets.values() if f.name not in sources]

    def in_edges(self, flowlet: Flowlet) -> list[Edge]:
        return [e for e in self._edges if e.dst is flowlet]

    def out_edges(self, flowlet: Flowlet) -> list[Edge]:
        return [e for e in self._edges if e.src is flowlet]

    def upstream(self, flowlet: Flowlet) -> list[Flowlet]:
        return [e.src for e in self.in_edges(flowlet)]

    def downstream(self, flowlet: Flowlet) -> list[Flowlet]:
        return [e.dst for e in self.out_edges(flowlet)]

    # -- validation ---------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`GraphError` unless this is a well-formed HAMR job."""
        if not self._flowlets:
            raise GraphError("empty graph")
        if not self.loaders():
            raise GraphError("a job needs at least one loader flowlet")
        for flowlet in self._flowlets.values():
            if flowlet.kind is not FlowletKind.LOADER and not self.in_edges(flowlet):
                raise GraphError(
                    f"{flowlet.name!r} is a {flowlet.kind.value} with no inbound edges"
                )
        self._check_acyclic()

    def topological_order(self) -> list[Flowlet]:
        """Flowlets in dependency order (raises on cycles)."""
        order: list[Flowlet] = []
        indegree = {name: 0 for name in self._flowlets}
        for edge in self._edges:
            indegree[edge.dst.name] += 1
        frontier = sorted(name for name, d in indegree.items() if d == 0)
        while frontier:
            name = frontier.pop(0)
            flowlet = self._flowlets[name]
            order.append(flowlet)
            added = []
            for edge in self.out_edges(flowlet):
                indegree[edge.dst.name] -= 1
                if indegree[edge.dst.name] == 0:
                    added.append(edge.dst.name)
            frontier.extend(sorted(added))
        if len(order) != len(self._flowlets):
            cyclic = sorted(name for name, d in indegree.items() if d > 0)
            raise GraphError(f"flowlet graph has a cycle through: {', '.join(cyclic)}")
        return order

    def _check_acyclic(self) -> None:
        self.topological_order()

    def describe(self) -> str:
        """A human-readable plan: flowlets in dependency order with their
        kinds and outgoing edges (mode, combiner)."""
        lines = [f"FlowletGraph {self.name!r}"]
        for flowlet in self.topological_order():
            lines.append(f"  [{flowlet.kind.value}] {flowlet.name}")
            for edge in self.out_edges(flowlet):
                extras = []
                if edge.mode is not EdgeMode.SHUFFLE:
                    extras.append(edge.mode.value)
                if edge.combiner is not None:
                    extras.append("combiner")
                suffix = f"  ({', '.join(extras)})" if extras else ""
                lines.append(f"      -> {edge.dst.name}{suffix}")
            if not self.out_edges(flowlet):
                lines.append("      => job output")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowletGraph {self.name!r}: {len(self._flowlets)} flowlets, "
            f"{len(self._edges)} edges>"
        )
