"""The HAMR engine: job admission, split assignment, execution, results.

``HamrEngine.run(graph)`` executes one flowlet DAG on the simulated
cluster: it validates the graph, fills in default partitioners, builds a
:class:`~repro.core.runtime.NodeRuntime` per worker (each holding the
whole graph, §2), charges the (small) job-startup cost, and drives the
simulation until every flowlet instance on every node has completed.

The engine is reusable: drivers call ``run`` repeatedly for iterative
algorithms (PageRank, K-Means); the virtual clock and the KV store
persist across runs, so iteration ``i+1`` starts where ``i`` left off —
with its state already in memory, exactly the paper's §3.1 story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import ConfigError, JobError, ReproError, SimulationError
from repro.common.partitioner import HashPartitioner
from repro.common.units import KB
from repro.cluster.cluster import Cluster
from repro.core.flowlet import Flowlet
from repro.core.graph import FlowletGraph
from repro.core.runtime import NodeRuntime
from repro.core.sources import SourceSplit
from repro.dataplane import SpillPool
from repro.dataplane.fabrics import ExchangeFabric, make_fabric
from repro.obs import STARTUP
from repro.storage.kvstore import KVStore
from repro.storage.localfs import LocalFS


@dataclass
class HamrConfig:
    """Engine knobs (defaults reproduce the paper's configuration)."""

    #: apply per-edge combiners when present (Table 3 studies this)
    use_combiners: bool = True
    #: pipelining grain for loader user code, real logical bytes
    loader_chunk_bytes: int = 16 * KB
    #: grouped bytes one fine-grain reduce task processes (real logical bytes)
    reduce_task_bytes: int = 16 * KB
    #: charge final sink output as a local disk write ("finally to disk", §3.1)
    charge_sink_disk: bool = True
    #: gather sink pairs into JobResult.outputs (disable for huge outputs)
    collect_outputs: bool = True
    #: ablation A1: stage every shuffled bin through disk (Hadoop-style),
    #: forfeiting §3.1's in-memory data movement
    stage_edges_on_disk: bool = False
    #: ablation A2: hold every flowlet's bins until all upstreams complete
    #: (a full barrier before each phase), forfeiting §3.2's asynchrony
    barrier_mode: bool = False
    #: adaptive flow control (§2: "the number of concurrent loader tasks
    #: can be decreased to control the amount of input data"): when a
    #: node's tasks have hit this many flow-control stalls since its
    #: loader last launched a task, the loader backs off before the next
    #: split
    adaptive_loader_throttle: bool = False
    throttle_stall_threshold: int = 8
    throttle_backoff: float = 1.0
    #: default exchange fabric for every edge (overridable per edge via
    #: ``Edge.fabric``): direct | tree | twolevel | rdma — see
    #: ``repro.dataplane.fabrics``
    fabric: str = "direct"
    #: shuffle-ownership strategy: "hash" (round-robin over all workers)
    #: or "shard" (locality-first: partitions owned only by workers
    #: holding input shards)
    partitioner: str = "hash"


@dataclass
class JobResult:
    """Outcome of one engine run."""

    job_name: str
    start_time: float
    end_time: float
    outputs: dict[str, list[tuple[Any, Any]]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    #: per-flowlet execution profile summed over nodes:
    #: name -> {tasks, bins_in, pairs_in, stalls}
    flowlet_metrics: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.end_time - self.start_time

    def output(self, flowlet_name: str) -> list[tuple[Any, Any]]:
        return self.outputs.get(flowlet_name, [])

    def sorted_output(self, flowlet_name: str) -> list[tuple[Any, Any]]:
        return sorted(self.output(flowlet_name), key=lambda kv: repr(kv[0]))


class HamrEngine:
    """A resident HAMR runtime on a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        localfs: Optional[LocalFS] = None,
        kvstore: Optional[KVStore] = None,
        config: Optional[HamrConfig] = None,
    ):
        self.cluster = cluster
        self.localfs = localfs if localfs is not None else LocalFS(cluster)
        self.kvstore = kvstore if kvstore is not None else KVStore(cluster)
        self.config = config or HamrConfig()
        self.num_workers = cluster.num_workers
        self._worker_index = {
            worker.node_id: index for index, worker in enumerate(cluster.workers)
        }
        # Per-run state
        self.graph: Optional[FlowletGraph] = None
        self._fabrics: dict[str, ExchangeFabric] = {}
        self.spill_pool: Optional[SpillPool] = None
        self.runtimes: list[NodeRuntime] = []
        self.metrics: dict[str, float] = {}
        self._outputs: dict[str, list[tuple[Any, Any]]] = {}
        self._counters: dict[str, float] = {}
        self._split_assignment: dict[tuple[str, int], list[SourceSplit]] = {}
        self._running = False

    # -- main entry point ----------------------------------------------------------

    def run(self, graph: FlowletGraph) -> JobResult:
        """Execute one job to completion; returns its result.

        May be called repeatedly; virtual time accumulates across calls.
        """
        if self._running:
            raise JobError("engine already running a job")
        graph.validate()
        self._prepare(graph)
        start_time = self.cluster.sim.now
        obs = self.cluster.obs
        done = {}

        def driver(sim):
            self._running = True
            with obs.span(f"job:{graph.name}", "job", job=graph.name, engine="hamr") as jspan:
                t0 = sim.now
                yield sim.timeout(self.cluster.cost.hamr_job_startup)
                if obs.enabled:
                    obs.charge(graph.name, STARTUP, sim.now - t0, span=jspan)
                events = []
                for runtime in self.runtimes:
                    events.extend(runtime.start())
                yield sim.all_of(events)
            done["t"] = sim.now

        self.cluster.sim.spawn(driver(self.cluster.sim), name=f"driver:{graph.name}")
        try:
            self.cluster.sim.run()
        except SimulationError as exc:
            if isinstance(exc.__cause__, ReproError):
                raise exc.__cause__ from exc
            raise
        finally:
            self._running = False
        if "t" not in done:
            raise JobError(f"job {graph.name!r} did not complete")
        return JobResult(
            job_name=graph.name,
            start_time=start_time,
            end_time=done["t"],
            outputs=dict(self._outputs),
            counters=dict(self._counters),
            metrics=dict(self.metrics),
            flowlet_metrics=self._gather_flowlet_metrics(),
        )

    def _gather_flowlet_metrics(self) -> dict[str, dict[str, int]]:
        profile: dict[str, dict[str, int]] = {}
        for runtime in self.runtimes:
            for name, instance in runtime.instances.items():
                row = profile.setdefault(
                    name, {"tasks": 0, "bins_in": 0, "pairs_in": 0, "stalls": 0}
                )
                row["tasks"] += instance.tasks_run
                row["bins_in"] += instance.bins_in
                row["pairs_in"] += instance.pairs_in
                row["stalls"] += instance.stalls
        return profile

    # -- preparation -----------------------------------------------------------------

    def _prepare(self, graph: FlowletGraph) -> None:
        self.graph = graph
        self.metrics = {}
        self._outputs = {}
        self._counters = {}
        for edge in graph.edges:
            if edge.partitioner is None:
                edge.partitioner = HashPartitioner(self.num_workers)
            elif edge.partitioner.num_partitions < 1:  # pragma: no cover - guarded upstream
                raise ConfigError("edge partitioner must have >= 1 partition")
        self._assign_splits(graph)
        self._install_partition_owners()
        # One fabric instance per (name, job run): combining fabrics
        # (twolevel) keep per-run gateway state that must not leak
        # across jobs.
        self._fabrics = {}
        # One spill pool per job: every node's runtime draws its
        # SpillManager from here, sharing an id space with the baseline.
        self.spill_pool = SpillPool(job=graph.name)
        self.runtimes = [NodeRuntime(self, index) for index in range(self.num_workers)]

    def _assign_splits(self, graph: FlowletGraph) -> None:
        """Locality-aware loader-split assignment (shared with the baseline)."""
        from repro.cluster.placement import assign_splits

        self._split_assignment = {}
        for flowlet in graph.loaders():
            assignment = assign_splits(self.cluster, flowlet.source.splits(self.cluster))
            for index, splits in enumerate(assignment):
                self._split_assignment[(flowlet.name, index)] = splits

    def _install_partition_owners(self) -> None:
        """Shard-aware partitioning: restrict shuffle ownership to the
        workers that actually hold input shards (locality-first), so
        grouped state lands where its inputs already are. The default
        "hash" strategy keeps the all-workers round-robin layout."""
        if self.config.partitioner != "shard":
            self.cluster.partition_owners = None
            return
        owners = sorted(
            {
                worker_index
                for (_name, worker_index), splits in self._split_assignment.items()
                if splits
            }
        )
        self.cluster.partition_owners = owners or None

    # -- runtime callbacks ---------------------------------------------------------------

    def fabric_for(self, edge) -> ExchangeFabric:
        """The (cached) exchange fabric serving one edge this run."""
        name = edge.fabric or self.config.fabric
        fabric = self._fabrics.get(name)
        if fabric is None:
            fabric = self._fabrics[name] = make_fabric(
                name, topology=self.cluster.topology()
            )
        return fabric

    def splits_for(self, flowlet: Flowlet, worker_index: int) -> list[SourceSplit]:
        return self._split_assignment.get((flowlet.name, worker_index), [])

    def worker_index_of(self, node) -> int:
        return self._worker_index[node.node_id]

    def collect_output(self, flowlet_name: str, pairs: list[tuple[Any, Any]]) -> None:
        if self.config.collect_outputs:
            self._outputs.setdefault(flowlet_name, []).extend(pairs)
        self.metrics["output_pairs"] = self.metrics.get("output_pairs", 0) + len(pairs)

    def collect_counters(self, ctx) -> None:
        for name, value in ctx.counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + value
        ctx.counters.clear()

    # -- introspection ------------------------------------------------------------------------

    def instance_status(self, flowlet_name: str) -> list[str]:
        """Status of an instance on every worker (testing/debugging)."""
        return [
            runtime.instance(flowlet_name).status.value for runtime in self.runtimes
        ]

    def total_stalls(self) -> int:
        return int(self.metrics.get("flow_stalls", 0))
