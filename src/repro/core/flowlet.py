"""Flowlet definitions — the paper's four phase types (§2).

A *flowlet* is one MapReduce-style phase in a HAMR job. Users subclass one
of the four types (or pass plain functions to the convenience
constructors) and wire instances into a :class:`~repro.core.graph.FlowletGraph`:

* :class:`Loader` — heads the workflow; pulls from a data source
  (DFS, local disks, the KV store, a stream) and emits key-value pairs.
* :class:`Map` — consumes pairs bin-by-bin, emits new pairs; may connect
  to any flowlet type, unlike Hadoop's fixed map→reduce order.
* :class:`Reduce` — collects *all* pairs grouped by key (internal
  barrier: runs only after every upstream flowlet completes); spills to
  local disk when the collection outgrows memory.
* :class:`PartialReduce` — folds arriving values into per-key
  accumulators *immediately* (commutative + associative operations),
  emitting only at upstream completion; overlaps network latency and
  compresses memory, per §2.

Each flowlet instance on each node moves through the paper's three states:
``DORMANT`` → ``READY`` → ``COMPLETE`` (§2, Fig. 2).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.context import TaskContext
    from repro.core.sources import DataSource


class FlowletKind(enum.Enum):
    LOADER = "loader"
    MAP = "map"
    REDUCE = "reduce"
    PARTIAL_REDUCE = "partial_reduce"


class FlowletStatus(enum.Enum):
    """Per-node lifecycle of a flowlet instance (§2)."""

    DORMANT = "dormant"  # not yet received all required data
    READY = "ready"  # has data (or completion) enabling execution
    COMPLETE = "complete"  # no more data will arrive or be produced


class Flowlet:
    """Base class. ``name`` must be unique within a graph.

    ``compute_factor`` scales the shared per-record CPU cost for this
    flowlet's user code (cosine similarity is costlier than tokenizing).

    ``aggregated_output`` declares that this flowlet's emissions are
    key-space-bounded aggregates (word counts, histogram bins, label
    vectors) rather than per-input-record data. Under the scale model
    (DESIGN.md §7) such streams are charged *unscaled*: their true modeled
    volume is bounded by the number of distinct keys, which does not grow
    with the data size. Leave it False for aggregates whose key space
    scales with the input (per-page ranks, per-clique records).
    """

    kind: FlowletKind

    def __init__(
        self,
        name: str,
        compute_factor: float = 1.0,
        aggregated_output: bool = False,
    ):
        if not name:
            raise ConfigError("flowlet needs a non-empty name")
        if compute_factor <= 0:
            raise ConfigError(f"{name}: compute_factor must be positive")
        self.name = name
        self.compute_factor = compute_factor
        self.aggregated_output = aggregated_output

    def setup(self, ctx: "TaskContext") -> None:
        """Called once per node before any task of this flowlet runs."""

    def teardown(self, ctx: "TaskContext") -> None:
        """Called once per node when this instance completes."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Loader(Flowlet):
    """Pulls records from a :class:`DataSource` and emits key-value pairs.

    ``load`` receives the source's raw records for one split and emits
    pairs through the context; the default implementation assumes the
    source already yields ``(key, value)`` pairs.
    """

    kind = FlowletKind.LOADER

    def __init__(
        self,
        name: str,
        source: "DataSource",
        compute_factor: float = 1.0,
        aggregated_output: bool = False,
    ):
        super().__init__(name, compute_factor, aggregated_output)
        if source is None:
            raise ConfigError(f"{name}: loader requires a data source")
        self.source = source

    def load(self, ctx: "TaskContext", records: Iterable[Any]) -> None:
        for record in records:
            key, value = record
            ctx.emit(key, value)


class Map(Flowlet):
    """Per-pair transformation. Override ``map`` or pass ``fn(ctx, k, v)``."""

    kind = FlowletKind.MAP

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[["TaskContext", Any, Any], None]] = None,
        compute_factor: float = 1.0,
        aggregated_output: bool = False,
    ):
        super().__init__(name, compute_factor, aggregated_output)
        self._fn = fn

    def map(self, ctx: "TaskContext", key: Any, value: Any) -> None:
        if self._fn is None:
            raise NotImplementedError(f"{self.name}: override map() or pass fn=")
        self._fn(ctx, key, value)


class Reduce(Flowlet):
    """Full grouping reduce. Override ``reduce`` or pass ``fn(ctx, k, values)``.

    Internally forms a barrier: values for a key are only handed to user
    code after every upstream flowlet has completed (§2).
    """

    kind = FlowletKind.REDUCE

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[["TaskContext", Any, list], None]] = None,
        compute_factor: float = 1.0,
        aggregated_output: bool = False,
    ):
        super().__init__(name, compute_factor, aggregated_output)
        self._fn = fn

    def reduce(self, ctx: "TaskContext", key: Any, values: list) -> None:
        if self._fn is None:
            raise NotImplementedError(f"{self.name}: override reduce() or pass fn=")
        self._fn(ctx, key, values)


class PartialReduce(Flowlet):
    """Incremental fold for commutative + associative computations.

    ``initial(key)`` makes a fresh accumulator, ``combine(acc, value)``
    folds one value in (must be commutative and associative across
    values), ``finalize(ctx, key, acc)`` emits results at upstream
    completion. The default finalize emits ``(key, acc)``.

    Updates to an accumulator model the shared-variable contention of
    §5.2: each node serializes updates per key through an atomic cell, so
    tiny key spaces (HistogramRatings' five ratings) degrade exactly as
    the paper reports.
    """

    kind = FlowletKind.PARTIAL_REDUCE

    def __init__(
        self,
        name: str,
        initial: Optional[Callable[[Any], Any]] = None,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        finalize: Optional[Callable[["TaskContext", Any, Any], None]] = None,
        compute_factor: float = 1.0,
        update_weight: float = 1.0,
        aggregated_output: bool = False,
    ):
        super().__init__(name, compute_factor, aggregated_output)
        if update_weight <= 0:
            raise ConfigError(f"{name}: update_weight must be positive")
        self._initial = initial
        self._combine = combine
        self._finalize = finalize
        #: accumulator cells (cache lines) touched per combined value — 1
        #: for a scalar counter, ~#fields for a vector sum. Scales the
        #: serialized atomic-update charge per record.
        self.update_weight = update_weight

    def initial(self, key: Any) -> Any:
        if self._initial is None:
            raise NotImplementedError(f"{self.name}: override initial() or pass initial=")
        return self._initial(key)

    def combine(self, acc: Any, value: Any) -> Any:
        if self._combine is None:
            raise NotImplementedError(f"{self.name}: override combine() or pass combine=")
        return self._combine(acc, value)

    def finalize(self, ctx: "TaskContext", key: Any, acc: Any) -> None:
        if self._finalize is not None:
            self._finalize(ctx, key, acc)
        else:
            ctx.emit(key, acc)
