"""Master-slave mode — job management on top of the engine (§7).

"More useful features e.g. key-value store and master-slave mode are
developed": the KV store lives in :mod:`repro.storage.kvstore`; this
module is the master side. A :class:`HamrMaster` owns an engine, accepts
flowlet-graph submissions into a queue, runs them in order, records
per-job lifecycle (QUEUED → RUNNING → SUCCEEDED / FAILED) and exposes a
cluster view of its slaves (the worker nodes).

A failed job poisons the session — the underlying simulation may hold
half-finished processes — so the master refuses further work until
``reset`` is called with a fresh engine, making failure handling explicit
rather than silent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import JobError, ReproError
from repro.core.engine import HamrEngine, JobResult
from repro.core.graph import FlowletGraph


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class JobHandle:
    """One submitted job's lifecycle record."""

    job_id: int
    graph: FlowletGraph
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0  # virtual time
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[JobResult] = None
    error: Optional[str] = None

    @property
    def name(self) -> str:
        return self.graph.name


@dataclass
class WorkerInfo:
    """The master's view of one slave node."""

    node_id: int
    worker_threads: int
    memory_budget: float
    memory_used: float
    memory_high_water: float

    @property
    def memory_pressure(self) -> float:
        return self.memory_used / self.memory_budget if self.memory_budget else 0.0


class HamrMaster:
    """FIFO job manager over one resident HAMR engine."""

    def __init__(self, engine: HamrEngine):
        self.engine = engine
        self._queue: list[JobHandle] = []
        self._history: list[JobHandle] = []
        self._next_id = 1
        self.healthy = True

    # -- submission ------------------------------------------------------------

    def submit(self, graph: FlowletGraph) -> JobHandle:
        """Validate and enqueue a job; returns its handle immediately."""
        if not self.healthy:
            raise JobError("master is poisoned by an earlier failure; call reset()")
        graph.validate()
        handle = JobHandle(
            self._next_id, graph, submitted_at=self.engine.cluster.sim.now
        )
        self._next_id += 1
        self._queue.append(handle)
        return handle

    def run_pending(self) -> list[JobHandle]:
        """Drain the queue in submission order; returns the handles run.

        Stops at the first failure (which poisons the master); remaining
        jobs stay QUEUED.
        """
        ran: list[JobHandle] = []
        while self._queue and self.healthy:
            handle = self._queue.pop(0)
            ran.append(handle)
            self._run(handle)
        return ran

    def run(self, graph: FlowletGraph) -> JobHandle:
        """Submit and execute immediately (after any queued jobs)."""
        handle = self.submit(graph)
        self.run_pending()
        return handle

    def _run(self, handle: JobHandle) -> None:
        handle.state = JobState.RUNNING
        handle.started_at = self.engine.cluster.sim.now
        try:
            handle.result = self.engine.run(handle.graph)
            handle.state = JobState.SUCCEEDED
        except ReproError as exc:
            handle.state = JobState.FAILED
            handle.error = str(exc.__cause__ or exc)
            self.healthy = False
        finally:
            handle.finished_at = self.engine.cluster.sim.now
            self._history.append(handle)

    # -- introspection --------------------------------------------------------------

    @property
    def queued(self) -> list[JobHandle]:
        return list(self._queue)

    @property
    def history(self) -> list[JobHandle]:
        return list(self._history)

    def job(self, job_id: int) -> JobHandle:
        for handle in self._history + self._queue:
            if handle.job_id == job_id:
                return handle
        raise JobError(f"unknown job id {job_id}")

    def workers(self) -> list[WorkerInfo]:
        """Heartbeat-style view of every slave node."""
        return [
            WorkerInfo(
                node_id=node.node_id,
                worker_threads=node.spec.worker_threads,
                memory_budget=node.memory.budget,
                memory_used=node.memory.used,
                memory_high_water=node.memory.high_water,
            )
            for node in self.engine.cluster.workers
        ]

    def summary(self) -> dict[str, Any]:
        by_state: dict[str, int] = {}
        for handle in self._history:
            by_state[handle.state.value] = by_state.get(handle.state.value, 0) + 1
        by_state["queued"] = len(self._queue)
        return {
            "healthy": self.healthy,
            "jobs": by_state,
            "virtual_time": self.engine.cluster.sim.now,
            "workers": len(self.engine.cluster.workers),
        }

    def reset(self, engine: HamrEngine) -> None:
        """Recover from a failure with a fresh engine; queued jobs survive."""
        self.engine = engine
        self.healthy = True
