"""Bins — the engine's unit of data movement and task enablement.

"Each bin represents the minimum data required to enable a flowlet" (§2):
producers pack emitted key-value pairs into per-(edge, partition) bins;
a sealed bin is shipped through the shuffle to the partition's owner node,
where it lands in the destination flowlet's bounded inbox and enables one
fine-grain flowlet task.

A :class:`Bin` is a routed :class:`~repro.dataplane.RecordBatch`: the
shared data plane supplies the records, the cached logical byte count and
the scale-model ``aggregated`` flag; the bin adds the routing state
(edge, partition) and the combiner / trace bookkeeping.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.common.sizeof import pair_size
from repro.dataplane.batch import RecordBatch


class Bin(RecordBatch):
    """A packed batch of key-value pairs bound for one (edge, partition).

    ``aggregated`` marks key-space-bounded aggregate data, charged
    unscaled under the scale model (see ``Flowlet.aggregated_output``).
    """

    __slots__ = ("edge_id", "partition", "represents", "trace_src")

    def __init__(
        self,
        edge_id: int,
        partition: int,
        pairs: Optional[list[tuple[Any, Any]]] = None,
        nbytes: int = 0,
        aggregated: bool = False,
        represents: int = 0,
        trace_src: int = 0,
    ):
        super().__init__(
            pairs if pairs is not None else [], nbytes=nbytes, aggregated=aggregated
        )
        self.edge_id = edge_id
        self.partition = partition
        #: original record count this bin stands for (set by combiners; 0 =
        #: its own pair count). Accumulator-update pressure follows the
        #: original records — Table 3's finding is that combining shrinks
        #: shuffle volume but not the serialized accumulator path.
        self.represents = represents
        #: id of the ship span that delivered this bin (0 when untraced);
        #: the consuming task emits a shuffle producer -> consumer edge
        self.trace_src = trace_src

    @property
    def pairs(self) -> list[tuple[Any, Any]]:
        return self.records

    @property
    def effective_records(self) -> int:
        return self.represents or len(self.records)

    def append(self, key: Any, value: Any) -> None:  # type: ignore[override]
        self.records.append((key, value))
        self._nbytes += pair_size(key, value)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(self.records)


class BinPacker:
    """Accumulates emitted pairs into bins for one producing flowlet instance.

    One open bin per (edge, partition). ``add`` returns the sealed bin when
    the open bin crosses the target size, else None; ``drain`` seals and
    returns everything left (called at task/flowlet completion so no pair is
    ever stranded).
    """

    def __init__(self, bin_size: int, aggregated: bool = False):
        if bin_size <= 0:
            raise ValueError("bin_size must be positive")
        self.bin_size = bin_size
        self.aggregated = aggregated
        self._open: dict[tuple[int, int], Bin] = {}
        # Metrics
        self.bins_sealed = 0
        self.pairs_packed = 0

    def add(self, edge_id: int, partition: int, key: Any, value: Any) -> Optional[Bin]:
        slot = (edge_id, partition)
        open_bin = self._open.get(slot)
        if open_bin is None:
            open_bin = Bin(edge_id, partition, aggregated=self.aggregated)
            self._open[slot] = open_bin
        open_bin.append(key, value)
        self.pairs_packed += 1
        if open_bin.nbytes >= self.bin_size:
            del self._open[slot]
            self.bins_sealed += 1
            return open_bin
        return None

    def drain(self, edge_id: Optional[int] = None) -> list[Bin]:
        """Seal and return all open bins (optionally only one edge's)."""
        drained: list[Bin] = []
        for slot in sorted(self._open):
            if edge_id is not None and slot[0] != edge_id:
                continue
            bin_ = self._open[slot]
            if bin_.pairs:
                drained.append(bin_)
        for bin_ in drained:
            del self._open[(bin_.edge_id, bin_.partition)]
            self.bins_sealed += 1
        return drained

    @property
    def open_bins(self) -> int:
        return len(self._open)

    @property
    def buffered_bytes(self) -> int:
        return sum(b.nbytes for b in self._open.values())
