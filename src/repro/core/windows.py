"""Windowing helpers for streaming flowlet jobs.

The engine itself is window-agnostic (a flowlet sees keyed pairs); these
helpers implement the standard recipe for event-time tumbling windows on
top of it: key every record by ``(window_id, original_key)`` at the
loader/map stage, aggregate with a PartialReduce as usual, and read
per-window results out of the job output.

Example::

    win = TumblingWindows(width=60.0)
    # inside a loader/map:  ctx.emit(win.key(event_time, user), 1)
    # output keys are (window_id, user); win.start(window_id) gives the
    # window's start time back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TumblingWindows:
    """Fixed-width, non-overlapping event-time windows.

    ``width`` is in the same unit as the event timestamps (virtual
    seconds for :class:`~repro.core.streaming.StreamSource` batches).
    """

    width: float
    origin: float = 0.0

    def __post_init__(self):
        if self.width <= 0:
            raise ConfigError("window width must be positive")

    def window_of(self, timestamp: float) -> int:
        """The window index containing ``timestamp``."""
        return int((timestamp - self.origin) // self.width)

    def key(self, timestamp: float, key: Any) -> tuple[int, Any]:
        """A composite flowlet key placing ``key`` in its time window."""
        return (self.window_of(timestamp), key)

    def start(self, window_id: int) -> float:
        return self.origin + window_id * self.width

    def end(self, window_id: int) -> float:
        return self.start(window_id) + self.width

    def group_output(self, pairs) -> dict[int, dict[Any, Any]]:
        """Regroup job output keyed ``((window, key), value)`` into
        ``{window: {key: value}}`` for reporting."""
        out: dict[int, dict[Any, Any]] = {}
        for (window_id, key), value in pairs:
            out.setdefault(window_id, {})[key] = value
        return out
