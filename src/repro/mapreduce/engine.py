"""The Hadoop-style execution engine.

One :meth:`HadoopEngine.run` call executes one MapReduce job with the full
disk-staged, barrier-synchronized lifecycle described in §3 of the paper
(and criticized by it). All hardware and CPU costs come from the same
:class:`~repro.cluster.spec.CostModel` as the HAMR engine.

Timeline of a job::

    t0 ── job startup (YARN AM spin-up) ──────────────────────────┐
    map tasks: slot wait → JVM start → local block read → map()   │
               → sort + combine + spill(s) → merge → map output   │ overlap
    reduce tasks: slot wait → JVM start → fetch each map task's   │
               partition as it completes (disk read + network)    ┘
    ── BARRIER: reduce compute starts only when ALL fetches done ──
    merge (+ read back reducer-side spills) → reduce() → DFS write
    t1 ── all reducers done; output file sealed ── makespan = t1 - t0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import JobError, ReproError, SimulationError
from repro.common.partitioner import HashPartitioner
from repro.cluster.cluster import Cluster
from repro.cluster.memory import MemoryAccount
from repro.cluster.placement import assign_splits
from repro.dataplane import RecordBatch, SpillPool, partition_batch, spill_batch
from repro.dataplane.fabrics import make_fabric
from repro.mapreduce.api import MRContext, MRJob
from repro.obs import COMPUTE, DISK, EDGE_BARRIER, EDGE_SHUFFLE, NETWORK, STARTUP
from repro.obs import hostprof as _hostprof
from repro.sim import Resource
from repro.sim.core import SimEvent
from repro.storage.dfs import DFS


@dataclass
class HadoopConfig:
    """Baseline engine knobs."""

    #: gather final output pairs into the result object
    collect_outputs: bool = True
    #: delete intermediate chain files after use (keeps DFS tidy in drivers)
    cleanup_intermediates: bool = False
    #: fault tolerance: per-attempt map-task failure probability (seeded,
    #: deterministic) and Hadoop's retry budget
    map_failure_rate: float = 0.0
    failure_seed: int = 0
    max_task_attempts: int = 4
    #: deterministically fail the first N attempts of every map task
    #: (controlled fault-tolerance experiments)
    map_fail_first_attempts: int = 0
    #: straggler mitigation: once 60% of map tasks finish, launch backup
    #: attempts (on other nodes) for tasks running longer than
    #: ``speculation_slowdown`` x the median duration; first finisher wins
    speculative_execution: bool = False
    speculation_slowdown: float = 1.5
    #: exchange fabric for the shuffle (reduce-fetch) leg: direct | tree |
    #: twolevel | rdma — see ``repro.dataplane.fabrics``
    fabric: str = "direct"
    #: shuffle-ownership strategy: "hash" (reducers round-robin over all
    #: workers) or "shard" (locality-first: reducers placed only on
    #: workers holding input shards)
    partitioner: str = "hash"


@dataclass
class MRJobResult:
    job_name: str
    start_time: float
    end_time: float
    output_file: str
    outputs: list[tuple[Any, Any]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.end_time - self.start_time


class _MapOutput:
    """One finished map task's partitioned, sorted, disk-resident output.

    ``aggregated`` marks key-space-bounded (combined) output charged
    unscaled downstream. With speculative execution, a primary and a
    backup attempt may both write here; whichever triggers ``done`` first
    wins (contents are deterministic, so the loser's write is identical).
    """

    __slots__ = ("node", "partitions", "done", "aggregated", "started_at", "trace_span")

    def __init__(self, node, num_partitions: int, done: SimEvent, aggregated: bool = False):
        self.node = node
        self.partitions: dict[int, RecordBatch] = {
            p: RecordBatch(nbytes=0, aggregated=aggregated)
            for p in range(num_partitions)
        }
        self.done = done
        self.aggregated = aggregated
        self.started_at = None  # virtual time the first attempt began
        # span id of the winning map attempt (0 when untraced): reducer
        # fetches emit a map -> fetch shuffle causal edge from it
        self.trace_span = 0


class HadoopEngine:
    """Executes MapReduce jobs against a DFS on the simulated cluster."""

    def __init__(self, cluster: Cluster, dfs: DFS, config: Optional[HadoopConfig] = None):
        self.cluster = cluster
        self.dfs = dfs
        self.cost = cluster.cost
        self.config = config or HadoopConfig()
        self.num_workers = cluster.num_workers
        self.obs = cluster.obs
        self._worker_index = {
            worker.node_id: index for index, worker in enumerate(cluster.workers)
        }
        self._job_seq = 0

    # -- public API ---------------------------------------------------------------

    def run(self, job: MRJob) -> MRJobResult:
        """Execute one job to completion (drives the shared simulator)."""
        self._job_seq += 1
        sim = self.cluster.sim
        start_time = sim.now
        state: dict[str, Any] = {"counters": {}, "metrics": {}, "outputs": []}
        done = {}

        def driver(sim_):
            yield from self._run_job(job, state)
            done["t"] = sim_.now

        sim.spawn(driver(sim), name=f"mr-driver:{job.name}")
        try:
            sim.run()
        except SimulationError as exc:
            # surface library-level failures (task-retry exhaustion, ...)
            # under their own type rather than the kernel's wrapper
            if isinstance(exc.__cause__, ReproError):
                raise exc.__cause__ from exc
            raise
        if "t" not in done:
            raise JobError(f"MapReduce job {job.name!r} did not complete")
        return MRJobResult(
            job_name=job.name,
            start_time=start_time,
            end_time=done["t"],
            output_file=job.output_file,
            outputs=state["outputs"],
            counters=state["counters"],
            metrics=state["metrics"],
        )

    # -- job lifecycle ----------------------------------------------------------------

    def _run_job(self, job: MRJob, state: dict):
        with self.obs.span(f"job:{job.name}", "job", job=job.name, engine="hadoop") as jspan:
            yield from self._run_job_body(job, state, jspan)

    def _run_job_body(self, job: MRJob, state: dict, jspan=None):
        sim = self.cluster.sim
        cost = self.cost
        obs = self.obs
        t0 = sim.now
        yield sim.timeout(cost.hadoop_job_startup)
        if obs.enabled:
            obs.charge(job.name, STARTUP, sim.now - t0, span=jspan)

        splits = self.dfs.splits(job.input_file)
        num_reducers = job.num_reducers or self.num_workers
        partitioner = HashPartitioner(num_reducers)
        slots = [
            Resource(sim, cost.hadoop_slots_per_node, name=f"n{w.node_id}.slots")
            for w in self.cluster.workers
        ]
        for worker, slot in zip(self.cluster.workers, slots):
            self.cluster.wire_task_slots(
                slot, worker.node_id, float(cost.hadoop_slots_per_node)
            )
        state["metrics"]["map_tasks"] = len(splits)
        state["metrics"]["reduce_tasks"] = num_reducers if job.reducer else 0
        obs.progress_total(job.name, "map", float(len(splits)))
        if job.reducer is not None:
            obs.progress_total(job.name, "reduce", float(num_reducers))

        # -- map wave ---------------------------------------------------------------
        assignment = assign_splits(self.cluster, splits)
        self._install_partition_owners(assignment)
        map_outputs: list[_MapOutput] = []
        map_records: list[dict] = []  # for the speculation driver
        map_processes = []
        for worker_index, worker_splits in enumerate(assignment):
            node = self.cluster.worker(worker_index)
            for split in worker_splits:
                out = _MapOutput(
                    node,
                    num_reducers,
                    SimEvent(sim, name="map.done"),
                    aggregated=job.combiner is not None or job.aggregated_input,
                )
                map_outputs.append(out)
                map_records.append(
                    {"split": split, "out": out, "worker_index": worker_index}
                )
                map_processes.append(
                    sim.spawn(
                        self._map_task(job, split, node, slots[worker_index], partitioner, out, state),
                        name=f"{job.name}.map{len(map_outputs) - 1}",
                    )
                )
        state["backups"] = []
        if self.config.speculative_execution and len(map_records) > 1:
            sim.spawn(
                self._speculation_driver(job, map_records, slots, partitioner, state),
                name=f"{job.name}.speculator",
            )

        if job.reducer is None:
            for process in map_processes:
                yield process
            for backup in state["backups"]:
                yield backup
            yield from self._finalize_map_only(job, map_outputs, state)
            return

        # -- reduce wave (fetch overlaps the map wave; compute barriers) ------------
        # One spill pool per job: reducers co-located on a node share one
        # SpillManager (matching the flowlet runtime), so spill-run ids
        # and blame attribution line up across the two engines.
        spill_pool = SpillPool(job=job.name)
        fabric = make_fabric(self.config.fabric, topology=self.cluster.topology())
        reduce_processes = []
        for r in range(num_reducers):
            # Place reducer r with the cluster's partition-ownership
            # resolver (the same one HAMR shuffles against), so a
            # shard-aware partitioner reroutes the reducer — and its
            # spill_pool.for_node manager — to the owning node.
            node = self.cluster.owner_of_partition(r, num_reducers)
            worker_index = self._worker_index[node.node_id]
            reduce_processes.append(
                sim.spawn(
                    self._reduce_task(
                        job, r, node, slots[worker_index], map_outputs,
                        spill_pool, fabric, state,
                    ),
                    name=f"{job.name}.reduce{r}",
                )
            )
        for process in map_processes:
            yield process
        part_names = []
        for r, process in enumerate(reduce_processes):
            part_names.append((yield process))
        for backup in state["backups"]:
            yield backup
        self.dfs.concat(job.output_file, part_names)

    def _install_partition_owners(self, assignment) -> None:
        """Shard-aware partitioning: restrict reducer placement to the
        workers that hold input shards (mirrors the flowlet engine's
        owner installation, so both engines shuffle to the same nodes)."""
        if self.config.partitioner != "shard":
            self.cluster.partition_owners = None
            return
        owners = sorted(
            index for index, splits in enumerate(assignment) if splits
        )
        self.cluster.partition_owners = owners or None

    # -- map task -------------------------------------------------------------------------

    def _should_fail(self, job: MRJob, task_key: str, attempt: int) -> bool:
        """Deterministic seeded failure injection for fault-tolerance tests."""
        if attempt <= self.config.map_fail_first_attempts:
            return True
        if self.config.map_failure_rate <= 0.0:
            return False
        from repro.common.rng import derive_seed

        seed = derive_seed(self.config.failure_seed, job.name, task_key, attempt)
        return (seed % 10_000) / 10_000.0 < self.config.map_failure_rate

    def _map_task(self, job: MRJob, split, node, slot: Resource, partitioner, out: _MapOutput, state: dict, backup: bool = False):
        """Run one map task with Hadoop-style retry on injected failures.

        A failed attempt charges everything up to the failure point (JVM
        start, input read, map compute) before the task is rescheduled —
        the work is genuinely lost, as on a real cluster.
        """
        for attempt in range(1, self.config.max_task_attempts + 1):
            failed = (not backup) and self._should_fail(
                job, f"map-{split.block.block_id}", attempt
            )
            done = yield from self._map_attempt(
                job, split, node, slot, partitioner, out, state,
                fail=failed, backup=backup,
            )
            if done:
                return
            state["metrics"]["map_task_failures"] = (
                state["metrics"].get("map_task_failures", 0) + 1
            )
        raise JobError(
            f"{job.name}: map task for block {split.block.block_id} failed "
            f"{self.config.max_task_attempts} attempts"
        )

    def _speculation_driver(self, job: MRJob, map_records: list, slots, partitioner, state: dict):
        """Hadoop-style speculation: watch the map wave, compute the median
        duration once 60% finished, and launch one backup per straggler."""
        sim = self.cluster.sim
        total = len(map_records)
        durations: dict[int, float] = {}
        speculated: set[int] = set()
        while True:
            done = 0
            for i, record in enumerate(map_records):
                out = record["out"]
                if out.done.triggered:
                    done += 1
                    if i not in durations and out.started_at is not None:
                        durations[i] = sim.now - out.started_at
            if done == total:
                return
            if done >= 0.6 * total and durations:
                ordered = sorted(durations.values())
                median = ordered[len(ordered) // 2]
                threshold = self.config.speculation_slowdown * median
                for i, record in enumerate(map_records):
                    out = record["out"]
                    if i in speculated or out.done.triggered or out.started_at is None:
                        continue
                    if sim.now - out.started_at < threshold:
                        continue
                    # Back the straggler up on the next worker over.
                    speculated.add(i)
                    backup_index = (record["worker_index"] + 1) % self.num_workers
                    backup_node = self.cluster.worker(backup_index)
                    state["metrics"]["speculative_launched"] = (
                        state["metrics"].get("speculative_launched", 0) + 1
                    )
                    state["backups"].append(
                        sim.spawn(
                            self._map_task(
                                job, record["split"], backup_node, slots[backup_index],
                                partitioner, out, state, backup=True,
                            ),
                            name=f"{job.name}.backup{i}",
                        )
                    )
            yield sim.timeout(1.0)

    def _map_attempt(
        self,
        job: MRJob,
        split,
        node,
        slot: Resource,
        partitioner,
        out: _MapOutput,
        state: dict,
        fail: bool = False,
        backup: bool = False,
    ):
        sim = self.cluster.sim
        cost = self.cost
        obs = self.obs
        in_div = cost.scale if job.aggregated_input else 1.0
        out_div = cost.scale if out.aggregated else 1.0
        yield slot.acquire()
        try:
            if out.done.triggered:  # the other attempt already won
                return True
            if out.started_at is None:
                out.started_at = sim.now
            with obs.span(
                "map", "task", node=node.node_id, job=job.name,
                block=split.block.block_id, backup=backup,
            ) as mspan:
                t0 = sim.now
                yield sim.timeout(cost.hadoop_task_startup)  # container/JVM launch
                if obs.enabled:
                    obs.charge(job.name, STARTUP, sim.now - t0, node=node.node_id, span=mspan)
                records = yield from self.dfs.read_block(
                    split.block, node, cost_divisor=in_div, job=job.name, span=mspan
                )
                ctx = MRContext()
                t0 = sim.now
                yield node.record_compute(
                    split.nrecords / in_div, split.nbytes / in_div, job.mapper.compute_factor
                )
                if obs.enabled:
                    obs.charge(job.name, COMPUTE, sim.now - t0, node=node.node_id, span=mspan)
                if fail:
                    # the attempt dies after burning its input read and compute
                    return False
                prof = _hostprof.current()
                if prof is None:
                    for record in records:
                        key, value = record
                        job.mapper.map(ctx, key, value)
                else:
                    # host-clock frame around the synchronous user-map loop
                    # only (a scope must never contain a yield)
                    with prof.scope(_hostprof.ENGINE, "map"):
                        prof.units(split.nrecords, split.nbytes)
                        for record in records:
                            key, value = record
                            job.mapper.map(ctx, key, value)
                pairs = ctx.take()
                self._merge_counters(state, ctx)

                # Partition, sort, optionally combine — then materialize on
                # disk. The dataplane partitions and sizes in one pass; the
                # pre-combine (sort-buffer) volume is the partition sizes'
                # sum, so map output is never re-sized pair by pair.
                by_partition = partition_batch(
                    pairs, partitioner, aggregated=out.aggregated
                )
                raw_bytes = sum(b.nbytes for b in by_partition.values())
                total_bytes = 0
                if prof is not None:
                    prof.push(_hostprof.ENGINE, "map.sort")
                    prof.units(len(pairs), raw_bytes)
                for p, batch in by_partition.items():
                    batch.sort(key=lambda kv: repr(kv[0]))
                    if job.combiner is not None:
                        batch = RecordBatch(
                            job.combiner.apply(batch.records),
                            aggregated=batch.aggregated,
                        )
                    out.partitions[p] = batch
                    total_bytes += batch.nbytes
                if prof is not None:  # frame ends before the next yield
                    prof.pop()
                # Sort CPU over the pre-combine volume, spill count from buffer size.
                t0 = sim.now
                yield node.record_compute(
                    len(pairs) / in_div, raw_bytes / in_div, cost.hadoop_sort_factor
                )
                num_spills = max(
                    1, int(cost.scaled_bytes(raw_bytes / in_div) // cost.hadoop_sort_buffer) + 1
                ) if raw_bytes else 1
                yield node.compute(cost.serde_cost(total_bytes / out_div))
                t1 = sim.now
                yield node.disk_write(total_bytes / out_div)
                if num_spills > 1:
                    # Extra merge pass: read the spills back, write merged output.
                    state["metrics"]["map_spill_merges"] = (
                        state["metrics"].get("map_spill_merges", 0) + 1
                    )
                    yield node.disk_read(total_bytes / out_div)
                    yield node.disk_write(total_bytes / out_div)
                if obs.enabled:
                    obs.charge(job.name, COMPUTE, t1 - t0, node=node.node_id, span=mspan)
                    obs.charge(job.name, DISK, sim.now - t1, node=node.node_id, span=mspan)
                if out.done.triggered:
                    return True  # lost the race; the winner's output stands
                if backup:
                    state["metrics"]["speculative_wins"] = (
                        state["metrics"].get("speculative_wins", 0) + 1
                    )
                out.node = node  # reducers fetch from the winning attempt's disk
                out.trace_span = mspan.span_id
                out.done.trigger()
                # exactly once per split, even with speculative backups: the
                # losing attempt bailed out on out.done.triggered above
                obs.progress_done(job.name, "map")
                return True
        finally:
            slot.release()

    # -- reduce task -------------------------------------------------------------------------

    def _reduce_task(
        self,
        job: MRJob,
        r: int,
        node,
        slot: Resource,
        map_outputs: list,
        spill_pool: SpillPool,
        fabric,
        state: dict,
    ):
        sim = self.cluster.sim
        cost = self.cost
        obs = self.obs
        dst_index = self._worker_index[node.node_id]
        yield slot.acquire()
        try:
            with obs.span("reduce", "task", node=node.node_id, job=job.name, reducer=r) as rspan:
                t0 = sim.now
                yield sim.timeout(cost.hadoop_task_startup)
                if obs.enabled:
                    obs.charge(job.name, STARTUP, sim.now - t0, node=node.node_id, span=rspan)
                # Fetched data lands in this reduce task's container heap (a
                # ~1 GB JVM, not the whole node) — overflowing it spills to
                # local disk and pays a read-back at merge time.
                heap = MemoryAccount(
                    cost.hadoop_reduce_memory,
                    name=f"{job.name}.r{r}.heap",
                    clock=lambda: sim.now,
                )
                spill = spill_pool.for_node(node)
                segments: list[RecordBatch] = []
                resident_bytes = 0  # bytes in `segments` (for merge accounting)
                accounted_bytes = 0  # bytes charged against the task heap
                spill_runs = []
                shuffled_bytes = 0
                for out in map_outputs:
                    yield out.done
                    segment = out.partitions[r]
                    if not segment:
                        continue
                    nbytes = segment.nbytes / (cost.scale if out.aggregated else 1.0)
                    plan = fabric.plan(
                        "shuffle",
                        r,
                        worker_index=self._worker_index[out.node.node_id],
                        num_workers=self.num_workers,
                        owner_of=lambda p: dst_index,
                        nbytes=nbytes,
                        nrecords=segment.nrecords,
                        records=segment.records,
                        aggregated=out.aggregated,
                        stream=f"{job.name}:shuffle",
                    )
                    with obs.span(
                        "fetch", "shuffle", node=node.node_id, job=job.name,
                        src_node=out.node.node_id, nbytes=int(nbytes), parent=rspan,
                    ) as fspan:
                        obs.edge(out.trace_span, fspan, EDGE_SHUFFLE)
                        t0 = sim.now
                        yield out.node.disk_read(nbytes)
                        t1 = sim.now
                        for delivery in plan.deliveries:
                            for hop in delivery.hops:
                                yield self.cluster.network.send(
                                    self.cluster.worker(hop.src),
                                    self.cluster.worker(hop.dst),
                                    hop.nbytes,
                                )
                        if obs.enabled:
                            obs.charge(job.name, DISK, t1 - t0, node=node.node_id, span=fspan)
                            obs.charge(job.name, NETWORK, sim.now - t1, node=node.node_id, span=fspan)
                            # The pull-based fetch is Hadoop's exchange
                            # site — charge the traffic matrix here,
                            # after the fetch lands, in the same modeled
                            # wire bytes as HAMR's ship.
                            fabric.charge(
                                plan,
                                obs.traffic(job.name),
                                node_of=lambda w: self.cluster.worker(w).node_id,
                                scale=cost.scaled_bytes,
                            )
                    # The reduce barrier waits on every fetch.
                    obs.edge(fspan, rspan, EDGE_BARRIER)
                    shuffled_bytes += nbytes
                    scaled = cost.scaled_bytes(nbytes)
                    if not heap.allocate(scaled):
                        if segments:
                            # Merge the resident segments into one sorted
                            # run; its size is the segments' cached sizes
                            # summed, never a re-sizing pass.
                            merged = RecordBatch(nbytes=0)
                            prof = _hostprof.current()
                            if prof is not None:
                                prof.push(_hostprof.ENGINE, "reduce.merge")
                            for seg in segments:
                                merged.records.extend(seg.records)
                                merged._nbytes += seg.nbytes
                            merged.sort(key=lambda kv: repr(kv[0]))
                            if prof is not None:
                                prof.pop()
                            run = yield from spill_batch(
                                spill, merged, sorted_by_key=True, parent=rspan
                            )
                            spill_runs.append(run)
                            heap.free(accounted_bytes)
                            segments, resident_bytes, accounted_bytes = [], 0, 0
                            state["metrics"]["reduce_spills"] = (
                                state["metrics"].get("reduce_spills", 0) + 1
                            )
                        if heap.allocate(scaled):
                            accounted_bytes += scaled
                        # else: a single segment over budget — held uncharged,
                        # modeling the JVM running right at its heap ceiling
                    else:
                        accounted_bytes += scaled
                    segments.append(segment)
                    resident_bytes += nbytes
                state["metrics"]["shuffled_bytes"] = (
                    state["metrics"].get("shuffled_bytes", 0) + shuffled_bytes
                )

                # BARRIER passed: merge phase. Any aggregated segment means the
                # whole fetched volume is key-space-bounded.
                merge_div = cost.scale if any(o.aggregated for o in map_outputs) else 1.0
                groups: dict[Any, list] = {}
                merge_records = 0
                merge_bytes = 0
                prof = _hostprof.current()
                for run in spill_runs:
                    pairs = yield from spill.read_back(run)
                    spill.free(run)
                    obs.edge(spill.last_span_id, rspan, EDGE_BARRIER)
                    if prof is not None:
                        prof.push(_hostprof.ENGINE, "reduce.merge")
                    for key, value in pairs:
                        groups.setdefault(key, []).append(value)
                        merge_records += 1
                    if prof is not None:
                        prof.pop()
                    merge_bytes += run.nbytes
                if prof is not None:
                    prof.push(_hostprof.ENGINE, "reduce.merge")
                for seg in segments:
                    for key, value in seg:
                        groups.setdefault(key, []).append(value)
                        merge_records += 1
                if prof is not None:
                    prof.pop()
                merge_bytes += resident_bytes
                t0 = sim.now
                yield node.record_compute(
                    merge_records / merge_div, merge_bytes / merge_div, cost.hadoop_sort_factor
                )

                ctx = MRContext()
                yield node.record_compute(
                    merge_records / merge_div, merge_bytes / merge_div, job.reducer.compute_factor
                )
                if obs.enabled:
                    obs.charge(job.name, COMPUTE, sim.now - t0, node=node.node_id, span=rspan)
                if prof is None:
                    for key in sorted(groups, key=repr):
                        job.reducer.reduce(ctx, key, groups[key])
                else:
                    with prof.scope(_hostprof.ENGINE, "reduce"):
                        prof.units(merge_records, merge_bytes)
                        for key in sorted(groups, key=repr):
                            job.reducer.reduce(ctx, key, groups[key])
                output_pairs = ctx.take()
                self._merge_counters(state, ctx)
                if accounted_bytes:
                    heap.free(accounted_bytes)

                part_name = f"{job.output_file}/part-{r:05d}"
                yield from self.dfs.write(
                    part_name, output_pairs, node,
                    cost_divisor=cost.scale if job.aggregated_output else 1.0,
                    job=job.name, span=rspan,
                )
                if self.config.collect_outputs:
                    state["outputs"].extend(output_pairs)
                obs.progress_done(job.name, "reduce")
                return part_name
        finally:
            slot.release()

    # -- map-only jobs ------------------------------------------------------------------------

    def _finalize_map_only(self, job: MRJob, map_outputs: list, state: dict):
        """Write each map task's raw output straight to the DFS."""
        part_names = []
        writers = []
        sim = self.cluster.sim
        for i, out in enumerate(map_outputs):
            pairs = []
            for p in sorted(out.partitions):
                pairs.extend(out.partitions[p].records)
            part_name = f"{job.output_file}/part-m-{i:05d}"
            part_names.append(part_name)
            if self.config.collect_outputs:
                state["outputs"].extend(pairs)

            def write_one(name=part_name, node=out.node, data=pairs):
                yield from self.dfs.write(name, data, node)

            writers.append(sim.spawn(write_one(), name=f"{job.name}.write{i}"))
        for writer in writers:
            yield writer
        self.dfs.concat(job.output_file, part_names)

    # -- helpers ------------------------------------------------------------------------------------

    @staticmethod
    def _merge_counters(state: dict, ctx: MRContext) -> None:
        for name, value in ctx.counters.items():
            state["counters"][name] = state["counters"].get(name, 0.0) + value
