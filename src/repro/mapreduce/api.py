"""User-facing MapReduce API (Hadoop-flavored).

Jobs are two fixed phases — "each job only has two phases: map and reduce
and the order is also fixed" (§3.2) — optionally with a combiner. Complex
programs chain jobs (see :func:`repro.mapreduce.chain.run_chain`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.common.errors import ConfigError
from repro.core.combiner import Combiner  # same combiner contract as HAMR


class MRContext:
    """Emission context for map/reduce user code."""

    def __init__(self) -> None:
        self.emitted: list[tuple[Any, Any]] = []
        self.counters: dict[str, float] = {}

    def emit(self, key: Any, value: Any) -> None:
        self.emitted.append((key, value))

    def counter(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def take(self) -> list[tuple[Any, Any]]:
        emitted, self.emitted = self.emitted, []
        return emitted


class Mapper:
    """Override ``map`` or pass ``fn(ctx, key, value)``."""

    def __init__(
        self,
        fn: Optional[Callable[[MRContext, Any, Any], None]] = None,
        compute_factor: float = 1.0,
    ):
        self._fn = fn
        self.compute_factor = compute_factor

    def map(self, ctx: MRContext, key: Any, value: Any) -> None:
        if self._fn is None:
            raise NotImplementedError("override map() or pass fn=")
        self._fn(ctx, key, value)


class Reducer:
    """Override ``reduce`` or pass ``fn(ctx, key, values)``."""

    def __init__(
        self,
        fn: Optional[Callable[[MRContext, Any, list], None]] = None,
        compute_factor: float = 1.0,
    ):
        self._fn = fn
        self.compute_factor = compute_factor

    def reduce(self, ctx: MRContext, key: Any, values: list) -> None:
        if self._fn is None:
            raise NotImplementedError("override reduce() or pass fn=")
        self._fn(ctx, key, values)


class MRJob:
    """One MapReduce job over DFS files.

    ``input_file`` must contain ``(key, value)`` records; the output file
    will contain the reducer's emitted pairs. A map-only job (``reducer
    is None``) writes map output directly.
    """

    def __init__(
        self,
        name: str,
        input_file: str,
        output_file: str,
        mapper: Mapper,
        reducer: Optional[Reducer] = None,
        combiner: Optional[Combiner] = None,
        num_reducers: Optional[int] = None,
        aggregated_input: bool = False,
        aggregated_output: bool = False,
    ):
        if not name:
            raise ConfigError("job needs a name")
        if input_file == output_file:
            raise ConfigError(f"{name}: input and output files must differ")
        self.name = name
        self.input_file = input_file
        self.output_file = output_file
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.num_reducers = num_reducers
        #: scale-model flags: the input/output files hold key-space-bounded
        #: aggregate data and are charged unscaled (see DESIGN.md §7)
        self.aggregated_input = aggregated_input
        self.aggregated_output = aggregated_output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MRJob {self.name!r} {self.input_file} -> {self.output_file}>"
