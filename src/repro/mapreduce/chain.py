"""Multi-job chains.

"Many complex problems ... can be implemented in Hadoop by chaining
multiple MapReduce jobs together. It brings in not only the overhead of
creating and starting new jobs ... but also extra disk IO. Besides,
between jobs, there is also a barrier" (§3.2). ``run_chain`` reproduces
exactly that: strictly sequential jobs, each paying its own startup, each
handing data to the next through replicated DFS files.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import JobError
from repro.mapreduce.api import MRJob
from repro.mapreduce.engine import HadoopEngine, MRJobResult


def run_chain(engine: HadoopEngine, jobs: Sequence[MRJob]) -> list[MRJobResult]:
    """Run jobs back-to-back; each consumes the DFS state its predecessor left.

    Returns per-job results; total wall time is
    ``results[-1].end_time - results[0].start_time``.
    """
    if not jobs:
        raise JobError("empty job chain")
    results: list[MRJobResult] = []
    for i, job in enumerate(jobs):
        if not engine.dfs.exists(job.input_file):
            raise JobError(
                f"chain job {job.name!r} (step {i}): input {job.input_file!r} missing"
            )
        results.append(engine.run(job))
        if engine.config.cleanup_intermediates and i > 0:
            previous = jobs[i - 1]
            if previous.output_file != jobs[-1].output_file:
                engine.dfs.delete(previous.output_file)
    return results


def chain_makespan(results: Sequence[MRJobResult]) -> float:
    """Wall time of a whole chain (includes every barrier and startup)."""
    return results[-1].end_time - results[0].start_time
