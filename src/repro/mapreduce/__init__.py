"""The Hadoop-style MapReduce baseline (models IDH 3.0 / MRv2).

This is the comparator the paper measures against: disk-staged, barrier
synchronized, job-at-a-time MapReduce on the same simulated cluster and
cost model as the HAMR engine. Faithfully modeled behaviours:

* per-job startup and per-task (JVM) startup costs;
* data-local map task placement over DFS blocks;
* map-side sort buffer with sorted spills, combiner, and a merge pass —
  every map output is materialized on local disk;
* shuffle overlapped with the map wave (reducers fetch each map task's
  partition as it completes) but a hard barrier before reduce *compute*;
* reduce-side memory accounting with disk spill and merge;
* job output written to the DFS with pipeline replication;
* multi-job chains hand data through the DFS with a barrier and a fresh
  job startup per job (§3.2's critique).
"""

from repro.mapreduce.api import Combiner, Mapper, MRContext, MRJob, Reducer
from repro.mapreduce.engine import HadoopConfig, HadoopEngine, MRJobResult
from repro.mapreduce.chain import run_chain

__all__ = [
    "Mapper",
    "Reducer",
    "Combiner",
    "MRJob",
    "MRContext",
    "HadoopEngine",
    "HadoopConfig",
    "MRJobResult",
    "run_chain",
]
