"""Pluggable exchange fabrics: swappable shuffle routing + wire accounting.

The dataplane used to hard-code one all-to-all routing/charging strategy
(:func:`repro.dataplane.exchange.exchange_targets`): every sealed payload
went source → destination in one hop and charged the traffic matrix once
per target. That is the right model for the paper's full-bisection FDR
InfiniBand testbed, but it cannot ask the paper's central "what does the
fabric buy you" question. This module factors the strategy into
:class:`ExchangeFabric` backends selectable per edge (HAMR) or per job
(the Hadoop baseline):

``direct``
    Today's behaviour, byte-identical: one hop per target, one traffic
    charge per target, full serde cost. The committed ``BENCH_obs.json``
    reproduces exactly under this fabric.
``tree``
    Binomial-tree broadcast: a broadcast payload leaves the source once
    per subtree instead of once per worker — each non-root target
    receives its copy from its tree parent, so total broadcast wire
    bytes drop from ``N`` to ``N - 1`` payloads and the source NIC
    serializes ``log2(N)`` copies instead of ``N``. Shuffle and local
    payloads route directly.
``twolevel``
    Rack-aware two-level shuffle: a remote payload goes source →
    source-rack gateway → destination-rack gateway → destination, and
    the *inter-rack* hop is run through a per-(stream, rack-pair)
    combining gateway — a key already forwarded across that rack pair
    does not pay its key bytes again (aggregated payloads fold
    entirely into the combined record and pay nothing). Intra-rack hops
    carry full bytes. Requires a multi-rack :class:`Topology`; on a
    single-rack cluster it degrades to ``direct`` routing.
``rdma``
    Zero-copy model of HAMR's fine-grain asynchronous messaging on the
    FDR InfiniBand fabric: direct routing, but the per-payload
    serialization CPU charge is skipped (``serde_factor = 0``) — the
    NIC reads the bin straight out of registered memory.

**Contract** (see DESIGN.md "Exchange fabrics"): ``plan()`` is pure
routing — it returns an :class:`ExchangePlan` of per-target deliveries,
each a sequence of store-and-forward :class:`Hop` transfers in worker-
index space, and mutates nothing but the fabric's own dedup state.
``charge()`` then books every hop into a
:class:`~repro.obs.telemetry.TrafficMatrix`; it is a separate call so
each engine charges at its historical program point and the ``direct``
fabric's float-accumulation order (hence the drift-gated totals) stays
bit-exact. Both engines time each hop as a real ``network.send``, so a
fabric's extra hops land in the NETWORK blame bucket and ``explain``
attributes cross-fabric makespan deltas to the network.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.common.sizeof import logical_sizeof, pair_size
from repro.dataplane.exchange import (
    BROADCAST,
    BROADCAST_PARTITION,
    LOCAL,
    SHUFFLE,
    exchange_targets,
    partition_batch,
)

__all__ = [
    "FABRICS",
    "Topology",
    "Hop",
    "Delivery",
    "ExchangePlan",
    "ExchangeFabric",
    "DirectFabric",
    "TreeFabric",
    "TwoLevelFabric",
    "RdmaFabric",
    "make_fabric",
    "reroute_payload",
]

#: selectable fabric names, in documentation order
FABRICS = ("direct", "tree", "twolevel", "rdma")


class Topology:
    """Rack layout over worker indices.

    ``rack_size = 0`` (the default) means "no rack structure": every
    worker shares rack 0 and rack-aware fabrics degrade to direct
    routing. With ``rack_size = R``, workers ``[k*R, (k+1)*R)`` form
    rack ``k`` and the rack's gateway is its lowest worker index —
    matching the paper's 16-node testbed split into racks of four.
    """

    __slots__ = ("num_workers", "rack_size")

    def __init__(self, num_workers: int, rack_size: int = 0):
        self.num_workers = num_workers
        self.rack_size = rack_size if rack_size and rack_size > 0 else 0

    @property
    def multi_rack(self) -> bool:
        return 0 < self.rack_size < self.num_workers

    @property
    def num_racks(self) -> int:
        if not self.multi_rack:
            return 1
        return -(-self.num_workers // self.rack_size)

    def rack_of(self, worker_index: int) -> int:
        if not self.multi_rack:
            return 0
        return worker_index // self.rack_size

    def gateway(self, rack: int) -> int:
        """The rack's gateway worker (lowest worker index in the rack)."""
        if not self.multi_rack:
            return 0
        return rack * self.rack_size


class Hop:
    """One store-and-forward wire transfer, in worker-index space."""

    __slots__ = ("src", "dst", "nbytes")

    def __init__(self, src: int, dst: int, nbytes: float):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hop({self.src}->{self.dst}, {self.nbytes})"


class Delivery:
    """One logical delivery: the payload reaches ``target``'s inbox after
    every hop in ``hops`` completes (in order)."""

    __slots__ = ("target", "hops")

    def __init__(self, target: int, hops: list[Hop]):
        self.target = target
        self.hops = hops


class ExchangePlan:
    """A fabric's routing decision for one sealed payload."""

    __slots__ = ("mode", "partition", "deliveries", "nbytes", "nrecords")

    def __init__(
        self,
        mode: str,
        partition: int,
        deliveries: list[Delivery],
        nbytes: float,
        nrecords: int,
    ):
        #: *effective* exchange mode (broadcast-partition payloads count
        #: as broadcast whatever edge they rode in on)
        self.mode = mode
        self.partition = partition
        self.deliveries = deliveries
        self.nbytes = nbytes
        self.nrecords = nrecords

    @property
    def targets(self) -> list[int]:
        return [delivery.target for delivery in self.deliveries]

    @property
    def wire_bytes(self) -> float:
        """Total timed wire bytes over every hop of every delivery."""
        return sum(h.nbytes for d in self.deliveries for h in d.hops)


class ExchangeFabric:
    """Routing + transport-charging strategy for one exchange edge.

    Subclasses override :meth:`_route` (per-target hop construction) or
    :meth:`plan` (when deliveries share hops, as in tree broadcast).
    ``serde_factor`` scales the per-payload serialization CPU charge —
    1.0 for copy-based fabrics, 0.0 for the zero-copy RDMA model.
    """

    name = "base"
    serde_factor = 1.0

    def __init__(self, topology: Optional[Topology] = None):
        self.topology = topology if topology is not None else Topology(0)

    # -- partitioning (shared by every fabric) ---------------------------------

    def partition_batch(
        self,
        pairs: Iterable[tuple[Any, Any]],
        partitioner,
        *,
        aggregated: bool = False,
    ):
        """Hash-partition one batch (delegates to the shared dataplane pass)."""
        return partition_batch(pairs, partitioner, aggregated=aggregated)

    # -- routing ----------------------------------------------------------------

    def plan(
        self,
        mode: str,
        partition: int,
        *,
        worker_index: int,
        num_workers: int,
        owner_of=None,
        nbytes: float = 0.0,
        nrecords: int = 0,
        records: Optional[list] = None,
        aggregated: bool = False,
        stream: Any = None,
    ) -> ExchangePlan:
        """Route one sealed payload; mutates only fabric-local dedup state.

        ``records`` (the payload's key-value pairs) and ``stream`` (a
        stable id for the logical exchange, e.g. the edge id) feed
        combining fabrics; routing-only fabrics ignore them.
        """
        targets = exchange_targets(
            mode,
            partition,
            worker_index=worker_index,
            num_workers=num_workers,
            owner_of=owner_of,
        )
        effective = self._effective_mode(mode, partition)
        deliveries = [
            Delivery(
                target,
                self._route(
                    worker_index,
                    target,
                    effective,
                    nbytes=nbytes,
                    records=records,
                    aggregated=aggregated,
                    stream=stream,
                ),
            )
            for target in targets
        ]
        return ExchangePlan(effective, partition, deliveries, nbytes, nrecords)

    def _route(
        self,
        src: int,
        dst: int,
        mode: str,
        *,
        nbytes: float,
        records: Optional[list],
        aggregated: bool,
        stream: Any,
    ) -> list[Hop]:
        raise NotImplementedError

    @staticmethod
    def _effective_mode(mode: str, partition: int) -> str:
        if mode == BROADCAST or partition == BROADCAST_PARTITION:
            return BROADCAST
        return mode

    # -- charging ----------------------------------------------------------------

    def charge(self, plan: ExchangePlan, traffic, *, node_of, scale=None) -> None:
        """Book every hop of ``plan`` into a traffic matrix.

        ``node_of`` maps worker indices to node ids; ``scale`` converts
        timed wire bytes to modeled (drift-gated) bytes — pass the cost
        model's ``scaled_bytes`` so the charge matches what the network
        moves. Kept separate from :meth:`plan` so each engine charges at
        its historical program point (HAMR before the serde charge,
        Hadoop after the fetch completes) and ``direct`` totals stay
        bit-exact.
        """
        if traffic is None:
            return
        shuffle_partition = plan.partition if plan.mode == SHUFFLE else None
        for delivery in plan.deliveries:
            for hop in delivery.hops:
                traffic.charge(
                    node_of(hop.src),
                    node_of(hop.dst),
                    scale(hop.nbytes) if scale is not None else hop.nbytes,
                    records=plan.nrecords,
                    mode=plan.mode,
                    partition=shuffle_partition,
                )


class DirectFabric(ExchangeFabric):
    """The paper-testbed baseline: one full-bisection hop per target."""

    name = "direct"

    def _route(self, src, dst, mode, *, nbytes, records, aggregated, stream):
        return [Hop(src, dst, nbytes)]


class RdmaFabric(DirectFabric):
    """Direct routing with zero-copy sends (no serialization CPU charge)."""

    name = "rdma"
    serde_factor = 0.0


class TreeFabric(DirectFabric):
    """Binomial-tree broadcast; shuffle and local payloads go direct.

    The broadcast tree is rooted at the source worker: relabelling
    workers relative to the root, node ``v``'s parent clears ``v``'s
    highest set bit — the classic binomial schedule, so the source sends
    ``ceil(log2(N))`` copies and every other worker forwards at most
    that many. Each delivery carries exactly one tree edge, so every
    edge is timed and charged once.
    """

    name = "tree"

    def plan(self, mode, partition, **kwargs):
        plan = super().plan(mode, partition, **kwargs)
        if plan.mode != BROADCAST or len(plan.deliveries) <= 1:
            return plan
        root = kwargs["worker_index"]
        num_workers = kwargs["num_workers"]
        nbytes = kwargs.get("nbytes", 0.0)
        deliveries = []
        for delivery in plan.deliveries:
            target = delivery.target
            if target == root:
                deliveries.append(Delivery(target, []))
                continue
            relative = (target - root) % num_workers
            parent = (self._parent(relative) + root) % num_workers
            deliveries.append(Delivery(target, [Hop(parent, target, nbytes)]))
        plan.deliveries = deliveries
        return plan

    @staticmethod
    def _parent(relative: int) -> int:
        """Binomial-tree parent in root-relative labels (root = 0)."""
        return relative & ~(1 << (relative.bit_length() - 1))


class TwoLevelFabric(ExchangeFabric):
    """Rack-aware two-level shuffle with a combining inter-rack gateway.

    Remote payloads route source → source gateway → destination gateway
    → destination. The gateway pair runs a per-(stream, src-rack,
    dst-rack) combining stream over the inter-rack hop: the first time a
    key crosses a rack pair it pays its full pair bytes; a repeated
    *aggregated* key folds into the already-forwarded combined record
    (zero marginal bytes); a repeated non-aggregated key still ships its
    value but not its key bytes. Intra-rack hops always carry full
    payload bytes. Broadcast crosses each remote rack once (via that
    rack's gateway) and fans out inside it.
    """

    name = "twolevel"

    def __init__(self, topology: Optional[Topology] = None):
        super().__init__(topology)
        #: (stream, src_rack, dst_rack) -> keys already forwarded
        self._seen: dict[tuple, set] = {}
        #: modeled bytes the combining gateways saved (introspection)
        self.inter_rack_bytes_saved = 0.0

    def plan(self, mode, partition, **kwargs):
        plan = super().plan(mode, partition, **kwargs)
        if plan.mode != BROADCAST or not self.topology.multi_rack:
            return plan
        # Rack-aware broadcast: first target in a remote rack pulls the
        # payload across via its gateway; rackmates fan out from there.
        root = kwargs["worker_index"]
        nbytes = kwargs.get("nbytes", 0.0)
        topo = self.topology
        src_rack = topo.rack_of(root)
        crossed: set[int] = set()
        deliveries = []
        for delivery in plan.deliveries:
            target = delivery.target
            rack = topo.rack_of(target)
            if rack == src_rack:
                deliveries.append(Delivery(target, [Hop(root, target, nbytes)]))
                continue
            gateway = topo.gateway(rack)
            hops = []
            if rack not in crossed:
                crossed.add(rack)
                hops.append(Hop(root, gateway, nbytes))
            if target != gateway:
                hops.append(Hop(gateway, target, nbytes))
            deliveries.append(Delivery(target, hops))
        plan.deliveries = deliveries
        return plan

    def _route(self, src, dst, mode, *, nbytes, records, aggregated, stream):
        topo = self.topology
        src_rack, dst_rack = topo.rack_of(src), topo.rack_of(dst)
        if not topo.multi_rack or src_rack == dst_rack:
            return [Hop(src, dst, nbytes)]
        inter = nbytes * self._combine_fraction(
            stream, src_rack, dst_rack, records, aggregated
        )
        self.inter_rack_bytes_saved += nbytes - inter
        src_gateway = topo.gateway(src_rack)
        dst_gateway = topo.gateway(dst_rack)
        hops = []
        if src != src_gateway:
            hops.append(Hop(src, src_gateway, nbytes))
        hops.append(Hop(src_gateway, dst_gateway, inter))
        if dst_gateway != dst:
            hops.append(Hop(dst_gateway, dst, inter))
        return hops

    def _combine_fraction(
        self,
        stream: Any,
        src_rack: int,
        dst_rack: int,
        records: Optional[list],
        aggregated: bool,
    ) -> float:
        """Fraction of the payload the inter-rack hop still has to carry."""
        if not records:
            return 1.0
        seen = self._seen.setdefault((stream, src_rack, dst_rack), set())
        total = 0
        kept = 0
        for key, value in records:
            size = pair_size(key, value)
            total += size
            if key not in seen:
                seen.add(key)
                kept += size
            elif not aggregated:
                # value still crosses; the key folds into the forwarded one
                kept += size - logical_sizeof(key)
        if total <= 0:
            return 1.0
        return kept / total


_FABRIC_CLASSES = {
    "direct": DirectFabric,
    "tree": TreeFabric,
    "twolevel": TwoLevelFabric,
    "rdma": RdmaFabric,
}


def make_fabric(name: str, topology: Optional[Topology] = None) -> ExchangeFabric:
    """Instantiate a fabric by name (one instance per engine run: the
    twolevel gateways keep per-run combining state)."""
    cls = _FABRIC_CLASSES.get(name)
    if cls is None:
        raise ValueError(f"unknown exchange fabric {name!r}; pick from {FABRICS}")
    return cls(topology)


def reroute_payload(
    fabric: ExchangeFabric,
    *,
    mode: str,
    src: int,
    num_workers: int,
    nbytes: float,
    partition: int = 0,
    target: Optional[int] = None,
) -> ExchangePlan:
    """Re-price one *historical* payload under a candidate fabric.

    This is the fabric layer's offline costing surface for the what-if
    engine: given a payload observed in a finished run's traffic matrix
    (its mode, source worker, byte size, and — for shuffles — the
    destination worker it actually reached), return the
    :class:`ExchangePlan` the candidate fabric would have produced, hop
    by hop, without executing anything. Shuffle and local payloads pin
    the historical destination via a constant ``owner_of``; broadcast
    payloads reconstruct the full fan-out from ``num_workers``.

    Limitations, by construction: the payload's key-value records are
    gone (journals keep bytes, not data), so a combining fabric prices
    the inter-rack hop at the full payload bytes — re-priced ``twolevel``
    plans are an upper bound on its wire bytes and callers should treat
    the combining savings as unmodelable offline.
    """
    if mode not in (SHUFFLE, LOCAL, BROADCAST):
        raise ValueError(f"unknown exchange mode {mode!r}")
    if mode == SHUFFLE:
        if target is None:
            raise ValueError("rerouting a shuffle payload requires its target")
        owner_of = lambda _p, _t=target: _t  # noqa: E731 - constant resolver
        return fabric.plan(
            SHUFFLE,
            partition,
            worker_index=src,
            num_workers=num_workers,
            owner_of=owner_of,
            nbytes=nbytes,
        )
    if mode == LOCAL:
        return fabric.plan(
            LOCAL, partition, worker_index=src, num_workers=num_workers, nbytes=nbytes
        )
    return fabric.plan(
        BROADCAST,
        BROADCAST_PARTITION,
        worker_index=src,
        num_workers=num_workers,
        nbytes=nbytes,
    )
