"""Record batches — the unit of data motion shared by both engines.

The paper's HAMR engine wins by moving data through in-memory,
flowlet-to-flowlet channels instead of disk-staged record streams
(PAPER §2–§3). Reproducing that comparison credibly requires both
engines to move data through *one* factored layer, so that measured
differences come from the architectures, not from two divergent
re-implementations of partitioning, size accounting and spill staging.

A :class:`RecordBatch` is a list of records plus a **cached logical byte
count** and the scale-model ``aggregated`` flag. The cache is the hot-path
contract: every payload is sized by *one amortized pass per batch* —
made when the batch is built or inherited from a producer that already
knew the size — and never re-sized downstream. The accounting rule
(asserted by tests) is::

    batch.nbytes == sum(logical_sizeof(record) for record in batch)

so batching changes how often sizes are computed, never what they sum to:
virtual-clock results are byte-identical to per-record accounting.

:class:`BatchBuilder` streams records into size-bounded batches (loader
chunks, DFS blocks), sealing exactly where per-record accumulation would
— chunk boundaries, and therefore simulation event counts, are unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from repro.common.sizeof import logical_sizeof, pair_size
from repro.obs import hostprof as _hostprof

__all__ = [
    "RecordBatch",
    "BatchBuilder",
    "batch_nbytes",
    "pair_nbytes",
    "chunk_records",
]


def batch_nbytes(records: Iterable[Any]) -> int:
    """Logical size of ``records`` in one amortized pass.

    Exactly ``sum(logical_sizeof(r) for r in records)`` — the C-level
    ``sum(map(...))`` loop is the fast path, the per-record measure is
    the semantics.
    """
    prof = _hostprof.current()
    if prof is None:
        return sum(map(logical_sizeof, records))
    with prof.scope(_hostprof.DATAPLANE, "sizing"):
        total = sum(map(logical_sizeof, records))
        prof.units(0, total)
    return total


#: logical size of one key-value pair (re-exported so engine hot paths
#: depend only on the dataplane for sizing)
pair_nbytes = pair_size


class RecordBatch:
    """Records + cached logical byte count + aggregated flag.

    ``nbytes`` is computed lazily on first access and cached; builders
    and producers that already know the size pass it in and no sizing
    pass ever runs. For key-value payloads note that a pair's record
    size equals ``pair_size``: ``logical_sizeof((k, v)) == pair_size(k, v)``,
    so one batch type covers record streams and pair streams alike.
    """

    __slots__ = ("records", "aggregated", "_nbytes")

    def __init__(
        self,
        records: Optional[list[Any]] = None,
        *,
        nbytes: Optional[int] = None,
        aggregated: bool = False,
    ):
        self.records: list[Any] = records if records is not None else []
        self.aggregated = aggregated
        self._nbytes = nbytes

    @property
    def nbytes(self) -> int:
        """Cached logical size (one amortized pass on first access)."""
        if self._nbytes is None:
            self._nbytes = batch_nbytes(self.records)
        return self._nbytes

    @property
    def nrecords(self) -> int:
        return len(self.records)

    def append(self, record: Any) -> int:
        """Add one record, keeping the cache valid; returns its size."""
        size = logical_sizeof(record)
        self.records.append(record)
        if self._nbytes is not None:
            self._nbytes += size
        return size

    def extend(self, records: Iterable[Any]) -> None:
        records = list(records)
        if self._nbytes is not None:
            self._nbytes += batch_nbytes(records)
        self.records.extend(records)

    def sort(self, key: Callable[[Any], Any]) -> None:
        """Sort records in place (sizes are order-independent)."""
        self.records.sort(key=key)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __eq__(self, other: Any) -> bool:
        """Batches compare by content — against lists too, so consumers
        that treated payloads as plain record lists keep working."""
        if isinstance(other, RecordBatch):
            return self.records == other.records
        if isinstance(other, list):
            return self.records == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable container

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sized = "?" if self._nbytes is None else str(self._nbytes)
        return (
            f"<RecordBatch n={len(self.records)} nbytes={sized}"
            f"{' aggregated' if self.aggregated else ''}>"
        )


class BatchBuilder:
    """Streams records into size-bounded :class:`RecordBatch` chunks.

    Seals the open batch once its accumulated size satisfies
    ``scale_fn(size) >= limit`` (``scale_fn`` defaults to identity; the
    DFS passes the cost model's byte scaling so block boundaries land in
    *scaled* bytes) — byte-for-byte the rule the engines' inline
    accumulation loops used, so chunk boundaries are unchanged.
    """

    def __init__(
        self,
        limit: float,
        *,
        aggregated: bool = False,
        scale_fn: Optional[Callable[[int], float]] = None,
        sizer: Callable[[Any], int] = logical_sizeof,
    ):
        if limit <= 0:
            raise ValueError("batch size limit must be positive")
        self.limit = limit
        self.aggregated = aggregated
        self.scale_fn = scale_fn
        self.sizer = sizer
        self._open: list[Any] = []
        self._open_bytes = 0
        # Metrics
        self.batches_sealed = 0
        self.records_added = 0

    def add(self, record: Any) -> Optional[RecordBatch]:
        """Add one record; returns the sealed batch when one fills up."""
        self._open.append(record)
        self._open_bytes += self.sizer(record)
        self.records_added += 1
        scaled = (
            self.scale_fn(self._open_bytes) if self.scale_fn else self._open_bytes
        )
        if scaled >= self.limit:
            return self._seal()
        return None

    def drain(self) -> Optional[RecordBatch]:
        """Seal and return whatever is buffered (None when empty)."""
        if not self._open:
            return None
        return self._seal()

    def _seal(self) -> RecordBatch:
        batch = RecordBatch(
            self._open, nbytes=self._open_bytes, aggregated=self.aggregated
        )
        self._open, self._open_bytes = [], 0
        self.batches_sealed += 1
        return batch

    @property
    def open_records(self) -> int:
        return len(self._open)

    @property
    def open_bytes(self) -> int:
        return self._open_bytes


def chunk_records(
    records: Iterable[Any], chunk_bytes: float, *, aggregated: bool = False
) -> list[RecordBatch]:
    """Split ``records`` into size-bounded batches (loader chunking).

    Fast path: a :class:`RecordBatch` whose cached size already fits in
    one chunk passes through without any per-record sizing.
    """
    if (
        isinstance(records, RecordBatch)
        and records._nbytes is not None
        and records.nbytes <= chunk_bytes
    ):
        return [records] if records.records else []
    prof = _hostprof.current()
    if prof is not None:
        prof.push(_hostprof.DATAPLANE, "chunk_records")
    builder = BatchBuilder(chunk_bytes, aggregated=aggregated)
    chunks = []
    for record in records:
        sealed = builder.add(record)
        if sealed is not None:
            chunks.append(sealed)
    last = builder.drain()
    if last is not None:
        chunks.append(last)
    if prof is not None:
        prof.units(builder.records_added, sum(c.nbytes for c in chunks))
        prof.pop()
    return chunks
