"""The unified record-batch data plane shared by both engines.

Everything that moves records between tasks, nodes, or memory and disk —
flowlet bins, map output, shuffle payloads, spill runs, DFS blocks —
flows through this package as :class:`RecordBatch` objects: records plus
a cached logical byte count plus the scale-model ``aggregated`` flag.

Size accounting is **one amortized pass per batch** instead of a
``logical_sizeof`` call per record at every layer, with the invariant
(asserted in tests) that the batch charge equals the sum of per-record
charges — so virtual-clock results are byte-identical to per-record
accounting while real wall-clock drops.

Later sharding / multi-backend work plugs in here: a new exchange
backend or shard-aware partitioner only has to speak batches.
"""

from repro.dataplane.batch import (
    BatchBuilder,
    RecordBatch,
    batch_nbytes,
    chunk_records,
    pair_nbytes,
)
from repro.dataplane.exchange import (
    BROADCAST,
    BROADCAST_PARTITION,
    LOCAL,
    SHUFFLE,
    SpillPool,
    exchange_targets,
    partition_batch,
    spill_batch,
)
from repro.dataplane.fabrics import (
    FABRICS,
    ExchangeFabric,
    ExchangePlan,
    Topology,
    make_fabric,
)

__all__ = [
    "RecordBatch",
    "BatchBuilder",
    "batch_nbytes",
    "pair_nbytes",
    "chunk_records",
    "partition_batch",
    "exchange_targets",
    "spill_batch",
    "SpillPool",
    "SHUFFLE",
    "LOCAL",
    "BROADCAST",
    "BROADCAST_PARTITION",
    "FABRICS",
    "ExchangeFabric",
    "ExchangePlan",
    "Topology",
    "make_fabric",
]
