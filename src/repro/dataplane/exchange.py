"""Batch-aware data-motion helpers: partition, exchange, spill.

These are the operations the two engines used to re-implement
independently — hash-partitioning map output, resolving a shuffle
partition to its destination workers, and staging over-budget payloads
through the node-local spill store. Factoring them here is what makes
the cross-engine comparison trustworthy: one partitioning pass, one
target-resolution rule, one spill-id space per node.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.common.sizeof import pair_size
from repro.dataplane.batch import RecordBatch
from repro.obs import hostprof as _hostprof

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.storage.spill import SpillManager, SpillRun

__all__ = [
    "partition_batch",
    "exchange_targets",
    "spill_batch",
    "SpillPool",
    "SHUFFLE",
    "LOCAL",
    "BROADCAST",
]

#: exchange modes (string values match ``repro.core.graph.EdgeMode`` —
#: the dataplane sits below the engines and cannot import them)
SHUFFLE = "shuffle"
LOCAL = "local"
BROADCAST = "broadcast"

#: partition id meaning "every worker" (mirrors core.context.BROADCAST_PARTITION)
BROADCAST_PARTITION = -1


def partition_batch(
    pairs: Iterable[tuple[Any, Any]],
    partitioner,
    *,
    aggregated: bool = False,
) -> dict[int, RecordBatch]:
    """Split key-value pairs into per-partition batches, sized as they go.

    One pass computes both the partition assignment and each partition's
    logical byte count, replacing the separate partition-then-re-size
    loops both engines carried. Only non-empty partitions appear in the
    result; pair order within a partition is input order.
    """
    prof = _hostprof.current()
    if prof is not None:
        prof.push(_hostprof.DATAPLANE, "partition_batch")
    part = partitioner.partition
    batches: dict[int, RecordBatch] = {}
    sizes: dict[int, int] = {}
    nrecords = 0
    nbytes = 0
    for pair in pairs:
        p = part(pair[0])
        batch = batches.get(p)
        if batch is None:
            batch = batches[p] = RecordBatch()
            sizes[p] = 0
        batch.records.append(pair)
        sizes[p] += pair_size(pair[0], pair[1])
    for p, batch in batches.items():
        batch._nbytes = sizes[p]
        batch.aggregated = aggregated
        nrecords += len(batch.records)
        nbytes += sizes[p]
    if prof is not None:
        prof.units(nrecords, nbytes)
        prof.pop()
    return batches


def exchange_targets(
    mode: str,
    partition: int,
    *,
    worker_index: int,
    num_workers: int,
    owner_of: Optional[Callable[[int], int]] = None,
    traffic=None,
    src_node: Optional[int] = None,
    node_of: Optional[Callable[[int], int]] = None,
    nbytes: float = 0.0,
    nrecords: int = 0,
) -> list[int]:
    """Destination worker indices for one sealed payload.

    ``mode`` is one of :data:`SHUFFLE` / :data:`LOCAL` / :data:`BROADCAST`;
    a :data:`BROADCAST_PARTITION` partition broadcasts regardless of mode
    (control data emitted onto shuffle edges). ``owner_of`` maps a
    partition id to the worker index owning it (required for shuffles).

    This is the single choke point every sealed payload passes through,
    so it is also where the telemetry traffic matrix is charged: pass a
    :class:`~repro.obs.telemetry.TrafficMatrix` as ``traffic`` together
    with ``src_node``, a ``node_of`` worker-index → node-id resolver, and
    the payload's modeled wire ``nbytes``/``nrecords``, and every resolved
    edge is charged under its *effective* mode (broadcast-partition
    payloads count as broadcast traffic whatever edge they rode in on).
    """
    if mode == BROADCAST or partition == BROADCAST_PARTITION:
        targets = list(range(num_workers))
        effective_mode = BROADCAST
    elif mode == LOCAL:
        targets = [worker_index]
        effective_mode = LOCAL
    elif mode == SHUFFLE:
        if owner_of is None:
            raise ValueError("shuffle exchange requires an owner_of resolver")
        targets = [owner_of(partition)]
        effective_mode = SHUFFLE
    else:
        raise ValueError(f"unknown exchange mode {mode!r}")
    if traffic is not None:
        if src_node is None or node_of is None:
            raise ValueError("traffic charging requires src_node and node_of")
        for target in targets:
            traffic.charge(
                src_node,
                node_of(target),
                nbytes,
                records=nrecords,
                mode=effective_mode,
                partition=partition if effective_mode == SHUFFLE else None,
            )
    return targets


def spill_batch(
    manager: "SpillManager",
    batch: RecordBatch,
    *,
    sorted_by_key: bool = False,
    free_memory: bool = False,
    parent=None,
):
    """Process: stage one batch through the node-local spill store.

    Passes the batch's cached size through so the spill layer never
    re-sizes records the producer already accounted. Returns the
    manager's :class:`~repro.storage.spill.SpillRun`.
    """
    return manager.spill(
        batch.records,
        sorted_by_key=sorted_by_key,
        free_memory=free_memory,
        nbytes=batch.nbytes,
        parent=parent,
    )


class SpillPool:
    """Per-node spill managers for one job, shared by everything on the node.

    The flowlet runtime always ran one :class:`SpillManager` per node;
    the MapReduce baseline used to construct one per reduce *task*,
    giving the two engines different spill-file id spaces and blame
    attribution. Both now draw managers from a pool like this one:
    every task on a node sees the same manager, so run ids count up
    per node and charges land on one ledger entry per node.
    """

    def __init__(self, job: Optional[str] = None):
        self.job = job
        self._managers: dict[int, "SpillManager"] = {}

    def for_node(self, node: "Node") -> "SpillManager":
        manager = self._managers.get(node.node_id)
        if manager is None:
            from repro.storage.spill import SpillManager

            manager = SpillManager(node, job=self.job)
            self._managers[node.node_id] = manager
        return manager

    @property
    def managers(self) -> list["SpillManager"]:
        return [self._managers[k] for k in sorted(self._managers)]

    @property
    def bytes_spilled(self) -> int:
        return sum(m.bytes_spilled for m in self._managers.values())

    @property
    def bytes_read_back(self) -> int:
        return sum(m.bytes_read_back for m in self._managers.values())

    @property
    def runs_created(self) -> int:
        return sum(m.runs_created for m in self._managers.values())
