"""PUMA-style movie rating data.

One movie per line: ``movie_id:user_id_rating,user_id_rating,...`` — the
format used by the PUMA K-Means / Classification / Histogram benchmarks.
Ratings are integers 1..5 with a configurable (skewed) distribution — the
five-rating key space is exactly what drives the paper's HistogramRatings
pathology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng

#: empirical-ish rating popularity: 4s and 3s dominate, 1s are rare
DEFAULT_RATING_WEIGHTS = (0.08, 0.12, 0.25, 0.35, 0.20)


@dataclass(frozen=True)
class MovieRecord:
    """A parsed movie line."""

    movie_id: int
    user_ids: tuple
    ratings: tuple

    @property
    def average_rating(self) -> float:
        return sum(self.ratings) / len(self.ratings) if self.ratings else 0.0

    def vector(self) -> dict[int, float]:
        """Sparse user→rating vector for similarity computations."""
        return dict(zip(self.user_ids, (float(r) for r in self.ratings)))


def format_movie_line(movie_id: int, user_ids, ratings) -> str:
    pairs = ",".join(f"{u}_{r}" for u, r in zip(user_ids, ratings))
    return f"{movie_id}:{pairs}"


def parse_movie_line(line: str) -> MovieRecord:
    movie_part, _, ratings_part = line.partition(":")
    movie_id = int(movie_part)
    user_ids = []
    ratings = []
    if ratings_part:
        for chunk in ratings_part.split(","):
            user, _, rating = chunk.partition("_")
            user_ids.append(int(user))
            ratings.append(int(rating))
    return MovieRecord(movie_id, tuple(user_ids), tuple(ratings))


def movie_corpus(
    n_movies: int,
    seed: int = 0,
    n_users: int = 1_000,
    min_ratings: int = 5,
    max_ratings: int = 30,
    rating_weights=DEFAULT_RATING_WEIGHTS,
) -> list[tuple[int, str]]:
    """Generate ``(offset, line)`` movie records.

    Users per movie are drawn uniformly without replacement; rating values
    follow ``rating_weights`` over 1..5.
    """
    if n_movies <= 0:
        raise ValueError("n_movies must be positive")
    if not 0 < min_ratings <= max_ratings <= n_users:
        raise ValueError("need 0 < min_ratings <= max_ratings <= n_users")
    weights = np.asarray(rating_weights, dtype=np.float64)
    if weights.shape != (5,) or not np.isclose(weights.sum(), 1.0):
        raise ValueError("rating_weights must be 5 probabilities summing to 1")
    rng = make_rng(seed, "movies")
    records: list[tuple[int, str]] = []
    offset = 0
    counts = rng.integers(min_ratings, max_ratings + 1, size=n_movies)
    for movie_id in range(n_movies):
        k = int(counts[movie_id])
        users = rng.choice(n_users, size=k, replace=False)
        users.sort()
        ratings = rng.choice(5, size=k, p=weights) + 1
        line = format_movie_line(movie_id, users.tolist(), ratings.tolist())
        records.append((offset, line))
        offset += len(line) + 1
    return records


def cosine_similarity(a: dict[int, float], b: dict[int, float]) -> float:
    """Cosine similarity of two sparse vectors (0 when either is empty)."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(v * b[k] for k, v in a.items() if k in b)
    if dot == 0.0:
        return 0.0
    norm_a = sum(v * v for v in a.values()) ** 0.5
    norm_b = sum(v * v for v in b.values()) ** 0.5
    return dot / (norm_a * norm_b)
