"""Zipfian sampling.

Several of the paper's inputs follow Zipf distributions (web hyperlinks,
document words). :class:`ZipfSampler` draws from a finite Zipf law with a
precomputed CDF, vectorized through numpy for large draws.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n_items: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities for ranks 1..n (rank 1 most likely)."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class ZipfSampler:
    """Draws item indices in ``[0, n_items)`` with Zipfian frequencies."""

    def __init__(self, n_items: int, exponent: float, rng: np.random.Generator):
        self.n_items = n_items
        self.exponent = exponent
        self._rng = rng
        self._cdf = np.cumsum(zipf_weights(n_items, exponent))
        # Guard against float round-off at the top of the CDF.
        self._cdf[-1] = 1.0

    def sample(self, size: int) -> np.ndarray:
        """``size`` indices, most-frequent item = index 0."""
        if size < 0:
            raise ValueError("size must be non-negative")
        u = self._rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def expected_top_share(self) -> float:
        """Probability mass of the most frequent item (skew probe)."""
        return float(zipf_weights(self.n_items, self.exponent)[0])
