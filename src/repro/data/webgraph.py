"""HiBench-style web graph generation for PageRank.

"The input data are automatically generated Web data whose hyperlinks
follow the Zipfian distribution." Each page gets a random out-degree; link
*targets* are drawn Zipf-distributed, so popular pages accumulate
Zipfian in-degree, like the HiBench generator.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.data.zipf import ZipfSampler


def webgraph_edges(
    n_pages: int,
    n_edges: int,
    seed: int = 0,
    zipf_exponent: float = 0.8,
) -> list[tuple[int, int]]:
    """Generate ``(src_page, dst_page)`` edges; self-links removed, targets
    Zipf-skewed so in-degrees follow a power law. Every page appears as a
    source at least once (so out-degrees are never zero, which keeps the
    PageRank contribution step well-defined)."""
    if n_pages <= 1:
        raise ValueError("need at least 2 pages")
    if n_edges < n_pages:
        raise ValueError("need at least one edge per page")
    rng = make_rng(seed, "webgraph")
    sampler = ZipfSampler(n_pages, zipf_exponent, rng)
    # First n_pages edges guarantee every page has out-degree >= 1.
    sources = np.concatenate(
        [
            np.arange(n_pages, dtype=np.int64),
            rng.integers(0, n_pages, size=n_edges - n_pages),
        ]
    )
    targets = sampler.sample(n_edges)
    # Remap Zipf rank -> page id with a fixed permutation so the popular
    # pages are spread over the id space (as HiBench's hash does).
    permutation = rng.permutation(n_pages)
    targets = permutation[targets]
    # Remove self-links by bumping the target.
    collisions = sources == targets
    targets[collisions] = (targets[collisions] + 1) % n_pages
    return list(zip(sources.tolist(), targets.tolist()))


def out_degrees(edges: list[tuple[int, int]]) -> dict[int, int]:
    degrees: dict[int, int] = {}
    for src, _dst in edges:
        degrees[src] = degrees.get(src, 0) + 1
    return degrees
