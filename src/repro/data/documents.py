"""Labeled documents for NaiveBayes training.

"The input data are generated documents whose words follow the Zipfian
distribution" (HiBench's Mahout NaiveBayes input). Each document carries a
class label; per-class word distributions are shifted permutations of a
global Zipf law so classes are genuinely distinguishable.

Line format: ``label<TAB>word word word ...`` — records are
``(offset, line)`` like every other text input.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.data.text import make_vocabulary
from repro.data.zipf import ZipfSampler


def document_corpus(
    n_documents: int,
    seed: int = 0,
    n_labels: int = 4,
    vocabulary_size: int = 5_000,
    words_per_document: int = 50,
    zipf_exponent: float = 1.1,
) -> list[tuple[int, str]]:
    """Generate ``(offset, label\\tword...)`` records."""
    if n_documents <= 0:
        raise ValueError("n_documents must be positive")
    if n_labels <= 0:
        raise ValueError("n_labels must be positive")
    rng = make_rng(seed, "documents")
    vocab = np.array(make_vocabulary(vocabulary_size), dtype=object)
    sampler = ZipfSampler(vocabulary_size, zipf_exponent, rng)
    # Each label shifts the rank->word mapping, giving it its own "topic".
    label_permutations = [
        np.roll(np.arange(vocabulary_size), (vocabulary_size // n_labels) * label)
        for label in range(n_labels)
    ]
    labels = rng.integers(0, n_labels, size=n_documents)
    records: list[tuple[int, str]] = []
    offset = 0
    for doc_id in range(n_documents):
        label = int(labels[doc_id])
        ranks = sampler.sample(words_per_document)
        words = vocab[label_permutations[label][ranks]]
        line = f"label{label}\t" + " ".join(words)
        records.append((offset, line))
        offset += len(line) + 1
    return records


def parse_document_line(line: str) -> tuple[str, list[str]]:
    """Returns ``(label, words)``."""
    label, _, text = line.partition("\t")
    return label, text.split()
