"""Render host-time profiles: bucket summary, flat hot list, top-down tree.

The layout is deterministic (sorted by self/total host-ns, then label) —
the *values* are host noise by nature. Anything that gates must consume
bucket shares or call counts, not raw nanoseconds (that is what the
bench v5 ``hostprof`` section and the perf gate's tolerance band do).
"""

from __future__ import annotations

from repro.obs.hostprof import HOSTPROF_SCHEMA

__all__ = ["HOSTPROF_SCHEMA", "render_hostprof", "profile_payload"]


def _ms(ns: int) -> str:
    return f"{ns / 1e6:.2f}"


def render_hostprof(snapshot: dict, title: str = "", top: int = 20) -> str:
    """ASCII views of one hostprof snapshot (buckets, flat, tree)."""
    from repro.evaluation.report import render_table

    if snapshot.get("schema") != HOSTPROF_SCHEMA:
        raise ValueError(f"not a hostprof snapshot: {snapshot.get('schema')!r}")
    lines = []
    if title:
        lines.append(title)

    total = snapshot["total_ns"]
    bucket_rows = [
        [bucket, _ms(ns), f"{100.0 * snapshot['shares'][bucket]:.1f}%"]
        for bucket, ns in snapshot["buckets"].items()
    ]
    bucket_rows.append(["TOTAL", _ms(total), "100.0%" if total else "0.0%"])
    lines.append(
        render_table(
            ["bucket", "host ms", "share"],
            bucket_rows,
            title="Host time by subsystem bucket (self ns; buckets sum to total)",
        )
    )

    flat = sorted(snapshot["flat"], key=lambda r: (-r["self_ns"], r["bucket"], r["label"]))
    flat_rows = [
        [
            row["bucket"],
            row["label"],
            str(row["calls"]),
            _ms(row["self_ns"]),
            _ms(row["total_ns"]),
            f"{row['self_ns'] / row['calls']:,.0f}" if row["calls"] else "-",
        ]
        for row in flat[:top]
    ]
    lines.append(
        render_table(
            ["bucket", "label", "calls", "self ms", "total ms", "ns/call"],
            flat_rows,
            title=f"Flat profile — hottest {min(top, len(flat))} of {len(flat)} rows",
        )
    )

    tree = sorted(
        snapshot["tree"],
        key=lambda r: (r["path"][0], -r["total_ns"], r["path"]),
    )
    # Top-down: parents before children, children ordered by total desc.
    by_parent: dict[tuple, list[dict]] = {}
    for node in tree:
        by_parent.setdefault(tuple(node["path"][:-1]), []).append(node)
    tree_rows: list[list[str]] = []

    def _walk(prefix: tuple, depth: int) -> None:
        for node in sorted(
            by_parent.get(prefix, []), key=lambda r: (-r["total_ns"], r["path"])
        ):
            label = "  " * depth + node["path"][-1]
            tree_rows.append(
                [label, str(node["calls"]), _ms(node["total_ns"]), _ms(node["self_ns"])]
            )
            _walk(tuple(node["path"]), depth + 1)

    _walk((), 0)
    lines.append(
        render_table(
            ["frame (bucket/label)", "calls", "total ms", "self ms"],
            tree_rows,
            title="Top-down tree",
        )
    )
    return "\n\n".join(lines)


def profile_payload(
    fidelity: str, entries: dict[str, dict[str, dict]]
) -> dict:
    """Assemble the ``profile`` subcommand's JSON document.

    ``entries`` maps workload -> engine -> {"hostprof": snapshot,
    "fidelity": fidelity_dict}. The top-level schema is the hostprof
    schema: the per-run snapshots are the payload, the fidelity join is
    derived from them.
    """
    return {
        "schema": HOSTPROF_SCHEMA,
        "fidelity": fidelity,
        "workloads": entries,
    }
