"""The paper's published numbers, verbatim.

Table 2: "Performance comparison between IDH 3.0 and HAMR. The unit of
execution time is second." Table 3: "Performance of HAMR using Combiner."
Figure 3 plots the Table 2 speedups as two bar groups.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperRow:
    benchmark: str
    data_size: str
    idh_seconds: float
    hamr_seconds: float

    @property
    def speedup(self) -> float:
        return self.idh_seconds / self.hamr_seconds


#: Table 2, row for row.
PAPER_TABLE2: dict[str, PaperRow] = {
    "kmeans": PaperRow("K-Means", "300GB", 5215.079, 505.685),
    "classification": PaperRow("Classification", "300GB", 2773.660, 212.815),
    "pagerank": PaperRow("PageRank", "20GB", 2162.102, 158.853),
    "kcliques": PaperRow("KCliques", "168MB", 1161.246, 100.945),
    "wordcount": PaperRow("WordCount", "16GB", 89.904, 75.078),
    "histogram_movies": PaperRow("HistogramMovies", "30GB", 59.522, 34.542),
    "histogram_ratings": PaperRow("HistogramRatings", "30GB", 66.694, 252.198),
    "naive_bayes": PaperRow("NaiveBayes", "10GB", 263.078, 108.29),
}

#: Table 3: HAMR with combiner; speedups are still vs the Table 2 IDH column.
PAPER_TABLE3: dict[str, PaperRow] = {
    "histogram_movies": PaperRow("HistogramMovies", "30GB", 59.522, 33.234),
    "histogram_ratings": PaperRow("HistogramRatings", "30GB", 66.694, 215.911),
}

#: Figure 3(a): the feature-friendly benchmarks (speedup >= 6x claimed).
FIG3A_BENCHMARKS = ["kmeans", "classification", "pagerank", "kcliques"]

#: Figure 3(b): the IO-intensive benchmarks Hadoop is good at.
FIG3B_BENCHMARKS = ["wordcount", "histogram_movies", "histogram_ratings", "naive_bayes"]

#: Shape bands: (lo, hi) acceptable measured speedup per benchmark, wide
#: enough to absorb the simulator-vs-testbed gap while still asserting the
#: paper's qualitative claims (who wins, and roughly by how much).
SHAPE_BANDS: dict[str, tuple[float, float]] = {
    "kmeans": (6.0, 25.0),
    "classification": (6.0, 30.0),
    "pagerank": (6.0, 30.0),
    "kcliques": (6.0, 30.0),
    "wordcount": (1.0, 2.5),
    "histogram_movies": (1.2, 3.5),
    "histogram_ratings": (0.05, 0.7),  # Hadoop must win here
    "naive_bayes": (1.5, 6.0),
}
