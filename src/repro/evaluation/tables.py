"""Regeneration of the paper's tables.

* :func:`table1` — the cluster specification (configuration echo);
* :func:`table2` — the eight-benchmark IDH-vs-HAMR comparison;
* :func:`table3` — HAMR with combiners on the histogram benchmarks.

Each returns the measured rows plus a rendered string with
paper-vs-measured columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import PAPER_CLUSTER, ClusterSpec
from repro.common.units import format_bytes
from repro.evaluation.paper import PAPER_TABLE3
from repro.evaluation.report import render_table
from repro.evaluation.runner import BenchmarkRow, run_workload
from repro.evaluation.workloads import (
    make_histogram_movies,
    make_histogram_ratings,
    table2_workloads,
)


def table1(spec: ClusterSpec = PAPER_CLUSTER) -> str:
    """Table 1: Cluster Information."""
    rows = [
        ("# of compute nodes", str(spec.num_nodes)),
        ("CPU Count", "2"),
        ("CPU Type", "Intel Xeon Processor E5-2620"),
        ("CPU MHz", f"{spec.node.cpu_ghz:.0f}GHz"),
        ("Memory", format_bytes(spec.node.memory)),
        ("Network Type", "4x FDR InfiniBand"),
        ("Local Disk Type", "SATA-III"),
        ("# of Local Disk", str(spec.node.num_disks)),
        ("Worker threads / node", str(spec.node.worker_threads)),
        ("Worker nodes (tasks)", str(spec.num_workers)),
    ]
    return render_table(("Property", "Value"), rows, title="Table 1: Cluster Information")


@dataclass
class TableResult:
    rows: list[BenchmarkRow]
    rendered: str = ""

    def row(self, name: str) -> BenchmarkRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


def table2(fidelity: str = "small", progress=None) -> TableResult:
    """Table 2: all eight benchmarks on both engines."""
    rows = []
    for workload in table2_workloads(fidelity):
        if progress:
            progress(workload.name)
        rows.append(run_workload(workload))
    rendered = render_table(
        ("Benchmark", "Data Size", "IDH 3.0", "HAMR", "Speedup", "Paper IDH", "Paper HAMR", "Paper Speedup"),
        [
            (
                r.label,
                r.data_size,
                r.idh_seconds,
                r.hamr_seconds,
                r.speedup,
                r.paper.idh_seconds,
                r.paper.hamr_seconds,
                r.paper.speedup,
            )
            for r in rows
        ],
        title="Table 2: Performance comparison between IDH 3.0 and HAMR (seconds)",
    )
    return TableResult(rows, rendered)


def table3(fidelity: str = "small", baseline_rows: list[BenchmarkRow] | None = None) -> TableResult:
    """Table 3: HAMR *with combiner* on the histogram benchmarks.

    Speedups are against the same IDH baseline as Table 2; pass Table 2's
    rows to reuse its Hadoop measurements, otherwise they are re-measured.
    """
    rows = []
    for make in (make_histogram_movies, make_histogram_ratings):
        workload = make(fidelity, use_combiner=True)
        hamr_result = workload.run_hamr(workload.fresh_env(), workload.params, workload.records)
        if baseline_rows is not None:
            idh_seconds = next(r.idh_seconds for r in baseline_rows if r.name == workload.name)
        else:
            plain = make(fidelity)
            idh_seconds = plain.run_hadoop(
                plain.fresh_env(), plain.params, plain.records
            ).makespan
        rows.append(
            BenchmarkRow(
                name=workload.name,
                label=workload.label,
                data_size=workload.data_size,
                idh_seconds=idh_seconds,
                hamr_seconds=hamr_result.makespan,
                paper=PAPER_TABLE3.get(workload.name),
                hamr_result=hamr_result,
            )
        )
    rendered = render_table(
        ("Benchmark", "Data Size", "HAMR+Combiner", "Speedup", "Paper HAMR", "Paper Speedup"),
        [
            (r.label, r.data_size, r.hamr_seconds, r.speedup, r.paper.hamr_seconds, r.paper.speedup)
            for r in rows
        ],
        title="Table 3: Performance of HAMR using Combiner (seconds)",
    )
    return TableResult(rows, rendered)
