"""Ablation studies for the design choices the paper argues for.

Each function isolates one HAMR feature, runs the relevant workload with
the feature on and off, and returns an :class:`AblationResult` whose
``factor`` says how much the feature buys (> 1 means the feature helps).

| id | feature under test                   | paper section |
|----|--------------------------------------|---------------|
| A1 | in-memory data movement              | §3.1          |
| A2 | asynchronous (barrier-free) phases   | §3.2          |
| A3 | partial reduce vs full reduce        | §2 / §4       |
| A4 | fine-grain bin size                  | §2            |
| A5 | key-space skew sensitivity           | §5.2          |
| A6 | locality-aware refs (K-Means)        | §3.3          |
| A7 | combiner on the shuffle edge         | Table 3       |
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.apps import histograms, kmeans, wordcount
from repro.apps.base import AppEnv
from repro.cluster.spec import ClusterSpec
from repro.core.engine import HamrConfig


@dataclass(frozen=True)
class AblationResult:
    ablation: str
    description: str
    with_feature: float  # makespan, feature on (the HAMR default)
    without_feature: float  # makespan, feature off

    @property
    def factor(self) -> float:
        """How many times slower the system is without the feature."""
        return self.without_feature / self.with_feature


def _env(spec: ClusterSpec, **config_kw) -> AppEnv:
    return AppEnv(spec, hamr_config=HamrConfig(**config_kw) if config_kw else None)


def ablation_memory(workload) -> AblationResult:
    """A1: in-memory flow vs staging every shuffled bin through disk."""
    on = workload.run_hamr(_env(workload.spec()), workload.params, workload.records)
    off = workload.run_hamr(
        _env(workload.spec(), stage_edges_on_disk=True), workload.params, workload.records
    )
    return AblationResult(
        "A1", "in-memory data movement (§3.1)", on.makespan, off.makespan
    )


def ablation_async(workload) -> AblationResult:
    """A2: asynchronous fine-grain phases vs a barrier before every phase."""
    on = workload.run_hamr(_env(workload.spec()), workload.params, workload.records)
    off = workload.run_hamr(
        _env(workload.spec(), barrier_mode=True), workload.params, workload.records
    )
    return AblationResult(
        "A2", "asynchronous multi-phase execution (§3.2)", on.makespan, off.makespan
    )


def ablation_partial_reduce(workload) -> AblationResult:
    """A3: WordCount with PartialReduce vs a full barrier Reduce."""
    env_on = _env(workload.spec())
    env_on.ingest_local(wordcount.INPUT, workload.records)
    on = env_on.hamr.run(
        wordcount.build_hamr_graph(env_on, workload.params, use_partial_reduce=True)
    )
    env_off = _env(workload.spec())
    env_off.ingest_local(wordcount.INPUT, workload.records)
    off = env_off.hamr.run(
        wordcount.build_hamr_graph(env_off, workload.params, use_partial_reduce=False)
    )
    return AblationResult(
        "A3", "partial reduce vs full reduce (§2)", on.makespan, off.makespan
    )


def ablation_bin_size(workload, coarse_bin: int = 1 << 20) -> AblationResult:
    """A4: fine-grain bins vs coarse bins (1 MB real) on the same workload."""
    fine = workload.run_hamr(_env(workload.spec()), workload.params, workload.records)
    spec = workload.spec()
    coarse_spec = spec.with_cost(dc_replace(spec.cost, bin_size=coarse_bin))
    coarse = workload.run_hamr(_env(coarse_spec), workload.params, workload.records)
    return AblationResult(
        "A4", "fine-grain bins (§2)", fine.makespan, coarse.makespan
    )


def ablation_skew(fidelity: str = "small", seed: int = 0) -> list[tuple[str, float]]:
    """A5: HistogramRatings makespan under even vs skewed rating popularity.

    Returns ``[(label, hamr_makespan)]`` for increasing skew — the paper's
    §5.2 story predicts a monotone degradation.
    """
    from repro.evaluation.workloads import _make_histogram

    distributions = [
        ("uniform", (0.2, 0.2, 0.2, 0.2, 0.2)),
        ("default", (0.08, 0.12, 0.25, 0.35, 0.20)),
        ("extreme", (0.02, 0.03, 0.07, 0.18, 0.70)),
    ]
    out = []
    for label, weights in distributions:
        workload = _make_histogram("histogram_ratings", fidelity, seed)
        params = dc_replace(workload.params, rating_weights=weights)
        records = histograms.generate_input(params)
        workload.params = params
        workload.records = records
        workload.scale = workload.modeled_bytes / workload.real_bytes
        result = workload.run_hamr(_env(workload.spec()), params, records)
        out.append((label, result.makespan))
    return out


def ablation_locality(workload) -> AblationResult:
    """A6: K-Means passing LocationRefs vs shipping bulk movie data."""
    on = kmeans.run_hamr(
        _env(workload.spec()), workload.params, workload.records, use_locality=True
    )
    off = kmeans.run_hamr(
        _env(workload.spec()), workload.params, workload.records, use_locality=False
    )
    return AblationResult(
        "A6", "locality-aware location references (§3.3)", on.makespan, off.makespan
    )


def scaling_study(workload, worker_counts=(4, 8, 15)) -> list[tuple[int, float, float]]:
    """Cluster-size scaling: run the workload's HAMR job on clusters of
    increasing width (same per-node spec and scale factor).

    Returns ``[(workers, makespan, speedup_vs_smallest)]``. The paper
    claims scalability qualitatively; this quantifies it for our model.
    """
    from dataclasses import replace as _replace

    results = []
    base = None
    for workers in worker_counts:
        spec = _replace(workload.spec(), num_nodes=workers + 1)
        result = workload.run_hamr(AppEnv(spec), workload.params, workload.records)
        if base is None:
            base = result.makespan
        results.append((workers, result.makespan, base / result.makespan))
    return results


def ablation_combiner(workload) -> AblationResult:
    """A7: the Table 3 combiner on the HAMR shuffle edge.

    Note the inverted reading: ``with_feature`` is the combiner run.
    """
    params_on = dc_replace(workload.params, hamr_combiner=True)
    on = workload.run_hamr(_env(workload.spec()), params_on, workload.records)
    off = workload.run_hamr(_env(workload.spec()), workload.params, workload.records)
    return AblationResult(
        "A7", "combiner on the shuffle edge (Table 3)", on.makespan, off.makespan
    )
