"""Evaluation harness: regenerates every table and figure of §5.

* :mod:`paper` — the published numbers (Tables 1-3, Fig. 3);
* :mod:`workloads` — paper-scale workload presets via the scale model;
* :mod:`runner` — runs one benchmark on both engines in fresh
  environments and assembles comparison rows;
* :mod:`tables` / :mod:`figures` — Table 1/2/3 and Figure 3(a)/(b);
* :mod:`report` — ASCII rendering with paper-vs-measured columns;
* :mod:`ablations` — the A1-A7 design-choice studies of DESIGN.md §5.
"""

from repro.evaluation.paper import PAPER_TABLE2, PAPER_TABLE3, PaperRow
from repro.evaluation.workloads import Workload, table2_workloads, workload_by_name
from repro.evaluation.runner import BenchmarkRow, run_workload
from repro.evaluation.tables import table1, table2, table3
from repro.evaluation.figures import figure3a, figure3b

__all__ = [
    "PaperRow",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "Workload",
    "table2_workloads",
    "workload_by_name",
    "BenchmarkRow",
    "run_workload",
    "table1",
    "table2",
    "table3",
    "figure3a",
    "figure3b",
]
