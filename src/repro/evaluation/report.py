"""ASCII rendering of evaluation tables and bar charts."""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """A plain fixed-width table (right-aligns numbers, left-aligns text).

    Ragged rows are padded with empty cells to the header width; extra
    cells beyond the headers are dropped.
    """
    ncols = len(headers)
    padded = [list(row[:ncols]) + [""] * (ncols - len(row)) for row in rows]
    cells = [[_fmt(c) for c in row] for row in padded]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(ncols)
    ]
    numeric = [
        all(_is_number(row[i]) for row in padded) if padded else False
        for i in range(ncols)
    ]

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def render_bars(
    series: Sequence[tuple[str, float]],
    title: str = "",
    width: int = 40,
    baseline: Optional[float] = 1.0,
) -> str:
    """Horizontal bar chart of (label, value); a '|' marks the baseline.

    Zero and negative values render as empty bars (the numeric value is
    still printed), so degenerate series never divide by zero.
    """
    if not series:
        return title
    peak = max(max(v for _l, v in series), baseline or 0.0)
    if peak <= 0:
        peak = 1.0  # all values non-positive: render empty bars
    label_width = max(len(label) for label, _v in series)
    lines = [title] if title else []
    for label, value in series:
        bar_len = max(0, round(value / peak * width))
        bar = "#" * bar_len
        if baseline is not None and 0 < baseline <= peak:
            marker = round(baseline / peak * width)
            if marker >= len(bar):
                bar = bar.ljust(marker) + "|"
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _is_number(cell: object) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)
