"""Telemetry reports: resource-timeline heatmaps, traffic matrix, skew.

Renders one traced engine run's :class:`~repro.obs.Tracer` telemetry —
the per-node counter tracks, the N×N exchange traffic matrix and the
imbalance statistics — as the ``python -m repro.evaluation timeline``
artifact. The JSON export (schema ``repro.obs.timeline/v1``) is
byte-deterministic: two identical runs serialize identically, which is
what the telemetry determinism tests and the CI smoke step assert.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs import Tracer, build_skew_report
from repro.obs.telemetry import (
    DEFAULT_BINS,
    TELEMETRY_SCHEMA,
    render_skew,
    render_timeline_heatmap,
    render_traffic_matrix,
)

#: envelope schema of the ``timeline --json`` export (per-engine entries
#: inside it carry :data:`~repro.obs.telemetry.TELEMETRY_SCHEMA`)
TIMELINE_SCHEMA = "repro.obs.timeline/v1"


def telemetry_dict(
    tracer: Tracer,
    workload: str,
    engine: str,
    bins: int = DEFAULT_BINS,
) -> dict:
    """Deterministic JSON-serializable telemetry for one traced run."""
    matrices = tracer.traffic_matrices()
    return {
        "schema": TELEMETRY_SCHEMA,
        "workload": workload,
        "engine": engine,
        "virtual_end": tracer.sim.now,
        "timeline": tracer.timeline.to_dict(bins=bins),
        "traffic": {matrix.job: matrix.to_dict() for matrix in matrices},
        "traffic_totals": tracer.traffic_totals(),
        "skew": build_skew_report(tracer.timeline, matrices).to_dict(),
    }


def telemetry_json(
    tracer: Tracer,
    workload: str,
    engine: str,
    bins: int = DEFAULT_BINS,
    indent: Optional[int] = None,
) -> str:
    return json.dumps(
        telemetry_dict(tracer, workload, engine, bins=bins),
        sort_keys=True,
        indent=indent,
    )


def render_telemetry(tracer: Tracer, title: str = "", bins: int = DEFAULT_BINS) -> str:
    """The full ASCII telemetry report for one traced run."""
    parts = [title] if title else []
    parts.append(render_timeline_heatmap(tracer.timeline, bins=bins))
    matrices = tracer.traffic_matrices()
    for matrix in matrices:
        parts.append(render_traffic_matrix(matrix))
    if not matrices:
        parts.append("(no exchange traffic recorded)")
    parts.append(render_skew(build_skew_report(tracer.timeline, matrices)))
    return "\n\n".join(parts)
