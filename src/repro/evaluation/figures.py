"""Regeneration of Figure 3.

Figure 3 plots the Table 2 speedups as two bar groups: (a) the four
benchmarks that exploit HAMR's features (K-Means, Classification,
PageRank, KCliques — all >= 6x in the paper), and (b) the four simple
IO-intensive benchmarks where Hadoop's batch pipeline holds its own
(WordCount, HistogramMovies, HistogramRatings, NaiveBayes — including the
inversion where Hadoop beats HAMR on HistogramRatings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.paper import FIG3A_BENCHMARKS, FIG3B_BENCHMARKS, PAPER_TABLE2
from repro.evaluation.report import render_bars
from repro.evaluation.runner import BenchmarkRow, run_workload
from repro.evaluation.workloads import workload_by_name


@dataclass
class FigureResult:
    #: (label, measured speedup) in plot order
    series: list[tuple[str, float]]
    #: (label, paper speedup) for comparison
    paper_series: list[tuple[str, float]]
    rendered: str = ""


def _figure(names: list[str], fidelity: str, title: str, rows: list[BenchmarkRow] | None) -> FigureResult:
    series = []
    for name in names:
        if rows is not None:
            row = next(r for r in rows if r.name == name)
        else:
            row = run_workload(workload_by_name(name, fidelity))
        series.append((row.label, row.speedup))
    paper_series = [(PAPER_TABLE2[n].benchmark, PAPER_TABLE2[n].speedup) for n in names]
    rendered = (
        render_bars(series, title=f"{title} (measured; '|' = baseline 1.0)")
        + "\n\n"
        + render_bars(paper_series, title=f"{title} (paper)")
    )
    return FigureResult(series, paper_series, rendered)


def figure3a(fidelity: str = "small", rows: list[BenchmarkRow] | None = None) -> FigureResult:
    """Fig. 3(a): speedup of the four feature-exploiting benchmarks.

    Pass Table 2's rows to reuse its measurements instead of re-running.
    """
    return _figure(FIG3A_BENCHMARKS, fidelity, "Figure 3(a): dataflow-friendly benchmarks", rows)


def figure3b(fidelity: str = "small", rows: list[BenchmarkRow] | None = None) -> FigureResult:
    """Fig. 3(b): speedup of the four IO-intensive benchmarks."""
    return _figure(FIG3B_BENCHMARKS, fidelity, "Figure 3(b): IO-intensive benchmarks", rows)
