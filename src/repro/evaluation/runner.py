"""Dual-engine benchmark execution."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.apps.base import AppResult
from repro.evaluation.paper import PAPER_TABLE2, PaperRow, SHAPE_BANDS
from repro.evaluation.workloads import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Tracer


@dataclass
class BenchmarkRow:
    """One comparison row: measured IDH-style vs HAMR plus paper context."""

    name: str
    label: str
    data_size: str
    idh_seconds: float
    hamr_seconds: float
    paper: Optional[PaperRow] = None
    hamr_result: Optional[AppResult] = field(default=None, repr=False)
    hadoop_result: Optional[AppResult] = field(default=None, repr=False)
    #: observability tracers of the two runs (None unless ``obs=True``)
    hamr_obs: "Optional[Tracer]" = field(default=None, repr=False)
    hadoop_obs: "Optional[Tracer]" = field(default=None, repr=False)
    #: real wall-clock elapsed seconds per engine run (host time, not the
    #: virtual clock — varies run to run, excluded from drift comparisons)
    hamr_wall_seconds: float = 0.0
    hadoop_wall_seconds: float = 0.0
    #: host-time profiler snapshots (repro.obs.hostprof/v1 dicts; None
    #: unless ``profile=True``) — host ns per bucket/operator, clock track
    hamr_hostprof: Optional[dict] = field(default=None, repr=False)
    hadoop_hostprof: Optional[dict] = field(default=None, repr=False)

    @property
    def speedup(self) -> float:
        return self.idh_seconds / self.hamr_seconds

    @property
    def paper_speedup(self) -> Optional[float]:
        return self.paper.speedup if self.paper else None

    @property
    def in_shape_band(self) -> Optional[bool]:
        band = SHAPE_BANDS.get(self.name)
        if band is None:
            return None
        lo, hi = band
        return lo <= self.speedup <= hi


def run_workload(
    workload: Workload,
    engines: str = "both",
    obs: bool = False,
    profile: bool = False,
) -> BenchmarkRow:
    """Run a workload on fresh environments and assemble its row.

    ``engines`` may be ``"both"``, ``"hamr"`` or ``"hadoop"`` (missing
    engine columns are reported as 0). With ``obs=True`` each run keeps
    its observability tracer on the row (``hamr_obs`` / ``hadoop_obs``).
    With ``profile=True`` each run is host-time profiled (a fresh
    :class:`~repro.obs.hostprof.HostProfiler` per engine, attached to the
    sim kernel and activated globally for dataplane/storage hooks) and
    the row carries the snapshots — the virtual results are byte-identical
    either way.
    """

    def _run(runner, env):
        prof = None
        if profile:
            from repro.obs.hostprof import HostProfiler

            prof = HostProfiler()
            env.cluster.sim.hostprof = prof
        t0 = time.perf_counter()
        if prof is not None:
            with prof.activation():
                result = runner(env, workload.params, workload.records)
        else:
            result = runner(env, workload.params, workload.records)
        wall = time.perf_counter() - t0
        return result, wall, (prof.snapshot() if prof is not None else None)

    hamr_result = hadoop_result = None
    hamr_obs = hadoop_obs = None
    hamr_wall = hadoop_wall = 0.0
    hamr_prof = hadoop_prof = None
    if engines in ("both", "hamr"):
        env = workload.fresh_env(obs=obs)
        hamr_result, hamr_wall, hamr_prof = _run(workload.run_hamr, env)
        hamr_obs = env.obs if obs else None
    if engines in ("both", "hadoop"):
        env = workload.fresh_env(obs=obs)
        hadoop_result, hadoop_wall, hadoop_prof = _run(workload.run_hadoop, env)
        hadoop_obs = env.obs if obs else None
    return BenchmarkRow(
        name=workload.name,
        label=workload.label,
        data_size=workload.data_size,
        idh_seconds=hadoop_result.makespan if hadoop_result else 0.0,
        hamr_seconds=hamr_result.makespan if hamr_result else 0.0,
        paper=PAPER_TABLE2.get(workload.name),
        hamr_result=hamr_result,
        hadoop_result=hadoop_result,
        hamr_obs=hamr_obs,
        hadoop_obs=hadoop_obs,
        hamr_wall_seconds=hamr_wall,
        hadoop_wall_seconds=hadoop_wall,
        hamr_hostprof=hamr_prof,
        hadoop_hostprof=hadoop_prof,
    )
