"""Dual-engine benchmark execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import AppResult
from repro.evaluation.paper import PAPER_TABLE2, PaperRow, SHAPE_BANDS
from repro.evaluation.workloads import Workload


@dataclass
class BenchmarkRow:
    """One comparison row: measured IDH-style vs HAMR plus paper context."""

    name: str
    label: str
    data_size: str
    idh_seconds: float
    hamr_seconds: float
    paper: Optional[PaperRow] = None
    hamr_result: Optional[AppResult] = field(default=None, repr=False)
    hadoop_result: Optional[AppResult] = field(default=None, repr=False)

    @property
    def speedup(self) -> float:
        return self.idh_seconds / self.hamr_seconds

    @property
    def paper_speedup(self) -> Optional[float]:
        return self.paper.speedup if self.paper else None

    @property
    def in_shape_band(self) -> Optional[bool]:
        band = SHAPE_BANDS.get(self.name)
        if band is None:
            return None
        lo, hi = band
        return lo <= self.speedup <= hi


def run_workload(workload: Workload, engines: str = "both") -> BenchmarkRow:
    """Run a workload on fresh environments and assemble its row.

    ``engines`` may be ``"both"``, ``"hamr"`` or ``"hadoop"`` (missing
    engine columns are reported as 0).
    """
    hamr_result = hadoop_result = None
    if engines in ("both", "hamr"):
        hamr_result = workload.run_hamr(workload.fresh_env(), workload.params, workload.records)
    if engines in ("both", "hadoop"):
        hadoop_result = workload.run_hadoop(workload.fresh_env(), workload.params, workload.records)
    return BenchmarkRow(
        name=workload.name,
        label=workload.label,
        data_size=workload.data_size,
        idh_seconds=hadoop_result.makespan if hadoop_result else 0.0,
        hamr_seconds=hamr_result.makespan if hamr_result else 0.0,
        paper=PAPER_TABLE2.get(workload.name),
        hamr_result=hamr_result,
        hadoop_result=hadoop_result,
    )
