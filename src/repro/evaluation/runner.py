"""Dual-engine benchmark execution."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.apps.base import AppResult
from repro.evaluation.paper import PAPER_TABLE2, PaperRow, SHAPE_BANDS
from repro.evaluation.workloads import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Tracer


@dataclass
class BenchmarkRow:
    """One comparison row: measured IDH-style vs HAMR plus paper context."""

    name: str
    label: str
    data_size: str
    idh_seconds: float
    hamr_seconds: float
    paper: Optional[PaperRow] = None
    hamr_result: Optional[AppResult] = field(default=None, repr=False)
    hadoop_result: Optional[AppResult] = field(default=None, repr=False)
    #: observability tracers of the two runs (None unless ``obs=True``)
    hamr_obs: "Optional[Tracer]" = field(default=None, repr=False)
    hadoop_obs: "Optional[Tracer]" = field(default=None, repr=False)
    #: real wall-clock elapsed seconds per engine run (host time, not the
    #: virtual clock — varies run to run, excluded from drift comparisons)
    hamr_wall_seconds: float = 0.0
    hadoop_wall_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        return self.idh_seconds / self.hamr_seconds

    @property
    def paper_speedup(self) -> Optional[float]:
        return self.paper.speedup if self.paper else None

    @property
    def in_shape_band(self) -> Optional[bool]:
        band = SHAPE_BANDS.get(self.name)
        if band is None:
            return None
        lo, hi = band
        return lo <= self.speedup <= hi


def run_workload(workload: Workload, engines: str = "both", obs: bool = False) -> BenchmarkRow:
    """Run a workload on fresh environments and assemble its row.

    ``engines`` may be ``"both"``, ``"hamr"`` or ``"hadoop"`` (missing
    engine columns are reported as 0). With ``obs=True`` each run keeps
    its observability tracer on the row (``hamr_obs`` / ``hadoop_obs``).
    """
    hamr_result = hadoop_result = None
    hamr_obs = hadoop_obs = None
    hamr_wall = hadoop_wall = 0.0
    if engines in ("both", "hamr"):
        env = workload.fresh_env(obs=obs)
        t0 = time.perf_counter()
        hamr_result = workload.run_hamr(env, workload.params, workload.records)
        hamr_wall = time.perf_counter() - t0
        hamr_obs = env.obs if obs else None
    if engines in ("both", "hadoop"):
        env = workload.fresh_env(obs=obs)
        t0 = time.perf_counter()
        hadoop_result = workload.run_hadoop(env, workload.params, workload.records)
        hadoop_wall = time.perf_counter() - t0
        hadoop_obs = env.obs if obs else None
    return BenchmarkRow(
        name=workload.name,
        label=workload.label,
        data_size=workload.data_size,
        idh_seconds=hadoop_result.makespan if hadoop_result else 0.0,
        hamr_seconds=hamr_result.makespan if hamr_result else 0.0,
        paper=PAPER_TABLE2.get(workload.name),
        hamr_result=hamr_result,
        hadoop_result=hadoop_result,
        hamr_obs=hamr_obs,
        hadoop_obs=hadoop_obs,
        hamr_wall_seconds=hamr_wall,
        hadoop_wall_seconds=hadoop_wall,
    )
