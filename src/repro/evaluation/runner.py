"""Dual-engine benchmark execution."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.apps.base import AppResult
from repro.evaluation.paper import PAPER_TABLE2, PaperRow, SHAPE_BANDS
from repro.evaluation.workloads import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Tracer

#: memoized git commit for journal headers — resolve_commit() shells out
#: to git, which must happen at most once per process, not once per run
_COMMIT_CACHE: list = []


def _journal_commit() -> Optional[str]:
    if not _COMMIT_CACHE:
        from repro.obs.history import resolve_commit

        _COMMIT_CACHE.append(resolve_commit())
    return _COMMIT_CACHE[0]


@dataclass
class BenchmarkRow:
    """One comparison row: measured IDH-style vs HAMR plus paper context."""

    name: str
    label: str
    data_size: str
    idh_seconds: float
    hamr_seconds: float
    paper: Optional[PaperRow] = None
    hamr_result: Optional[AppResult] = field(default=None, repr=False)
    hadoop_result: Optional[AppResult] = field(default=None, repr=False)
    #: observability tracers of the two runs (None unless ``obs=True``)
    hamr_obs: "Optional[Tracer]" = field(default=None, repr=False)
    hadoop_obs: "Optional[Tracer]" = field(default=None, repr=False)
    #: real wall-clock elapsed seconds per engine run (host time, not the
    #: virtual clock — varies run to run, excluded from drift comparisons)
    hamr_wall_seconds: float = 0.0
    hadoop_wall_seconds: float = 0.0
    #: host-time profiler snapshots (repro.obs.hostprof/v1 dicts; None
    #: unless ``profile=True``) — host ns per bucket/operator, clock track
    hamr_hostprof: Optional[dict] = field(default=None, repr=False)
    hadoop_hostprof: Optional[dict] = field(default=None, repr=False)
    #: sim-trace ring-buffer evictions per engine run (0 = nothing lost)
    hamr_trace_dropped: int = 0
    hadoop_trace_dropped: int = 0
    #: run journals (repro.obs.journal JournalWriters; None unless a
    #: journal factory was passed to run_workload)
    hamr_journal: Optional[object] = field(default=None, repr=False)
    hadoop_journal: Optional[object] = field(default=None, repr=False)
    #: live monitors (repro.obs.live LiveMonitors; None unless ``watch``
    #: was passed to run_workload)
    hamr_watch: Optional[object] = field(default=None, repr=False)
    hadoop_watch: Optional[object] = field(default=None, repr=False)

    @property
    def speedup(self) -> float:
        return self.idh_seconds / self.hamr_seconds

    @property
    def paper_speedup(self) -> Optional[float]:
        return self.paper.speedup if self.paper else None

    @property
    def in_shape_band(self) -> Optional[bool]:
        band = SHAPE_BANDS.get(self.name)
        if band is None:
            return None
        lo, hi = band
        return lo <= self.speedup <= hi


def run_workload(
    workload: Workload,
    engines: str = "both",
    obs: bool = False,
    profile: bool = False,
    journal=None,
    watch=None,
    trace_max_records: Optional[int] = None,
    fabric: Optional[str] = None,
    partitioner: Optional[str] = None,
    rack_size: Optional[int] = None,
) -> BenchmarkRow:
    """Run a workload on fresh environments and assemble its row.

    ``engines`` may be ``"both"``, ``"hamr"`` or ``"hadoop"`` (missing
    engine columns are reported as 0). With ``obs=True`` each run keeps
    its observability tracer on the row (``hamr_obs`` / ``hadoop_obs``).
    With ``profile=True`` each run is host-time profiled (a fresh
    :class:`~repro.obs.hostprof.HostProfiler` per engine, attached to the
    sim kernel and activated globally for dataplane/storage hooks) and
    the row carries the snapshots — the virtual results are byte-identical
    either way.

    ``journal`` is a factory ``engine_name -> JournalWriter`` (or a bool;
    True creates in-memory writers). Each engine run gets its own writer
    with a header written before the cluster is built (telemetry wiring
    already emits events) and a footer carrying the run's makespan,
    virtual end time and the sim-trace drop counter. Journaling implies
    ``obs=True``. ``trace_max_records`` bounds the sim trace's ring
    buffer (see :class:`repro.sim.Trace`).

    ``watch`` turns on live monitoring (implies ``obs=True``): True or a
    :class:`~repro.obs.live.WatchConfig` attaches a fresh
    :class:`~repro.obs.live.LiveMonitor` per engine run, a callable
    ``(engine_name, tracer) -> LiveMonitor`` builds custom monitors
    (e.g. with per-engine SLO specs). Monitors are finished before the
    journal footer so the terminal frame lands inside the journal body;
    the row carries them (``hamr_watch`` / ``hadoop_watch``).
    """
    if journal is not None and journal is not False:
        obs = True
    if watch is not None and watch is not False:
        obs = True

    def _writer_for(engine: str):
        if journal is None or journal is False:
            return None
        if callable(journal):
            return journal(engine)
        from repro.obs.journal import JournalWriter

        return JournalWriter()

    def _run(runner, env):
        prof = None
        if profile:
            from repro.obs.hostprof import HostProfiler

            prof = HostProfiler()
            env.cluster.sim.hostprof = prof
        t0 = time.perf_counter()
        if prof is not None:
            with prof.activation():
                result = runner(env, workload.params, workload.records)
        else:
            result = runner(env, workload.params, workload.records)
        wall = time.perf_counter() - t0
        return result, wall, (prof.snapshot() if prof is not None else None)

    def _engine_run(runner, engine: str):
        writer = _writer_for(engine)
        if writer is not None:
            spec = workload.spec()
            num_workers = spec.num_nodes - 1
            # AppEnv defaults a rack-aware fabric to 4 racks when no
            # explicit rack size is given; record the resolved value so
            # offline consumers (whatif re-pricing) see the topology the
            # run actually used.
            resolved_rack = rack_size
            if resolved_rack is None and fabric == "twolevel":
                resolved_rack = spec.rack_size or max(1, num_workers // 4)
            header = dict(
                workload=workload.name,
                label=workload.label,
                data_size=workload.data_size,
                engine=engine,
                fabric=fabric or "direct",
                partitioner=partitioner or "hash",
                nodes=spec.num_nodes,
                rack_size=resolved_rack or 0,
            )
            # Provenance for the corpus index: which commit produced this
            # run. Deterministic within a checkout (REPRO_GIT_COMMIT
            # overrides in CI); omitted entirely outside git so journal
            # bytes stay reproducible in both worlds.
            commit = _journal_commit()
            if commit is not None:
                header["commit"] = commit
            writer.write_header(**header)
        env = workload.fresh_env(
            obs=obs, journal=writer, trace_max_records=trace_max_records,
            fabric=fabric, partitioner=partitioner, rack_size=rack_size,
        )
        monitor = None
        if watch is not None and watch is not False:
            from repro.obs.live import LiveMonitor, WatchConfig

            if callable(watch) and not isinstance(watch, WatchConfig):
                monitor = watch(engine, env.obs)
            else:
                config = watch if isinstance(watch, WatchConfig) else None
                monitor = LiveMonitor(env.obs, config=config)
            env.cluster.sim.progress = monitor
        result, wall, prof = _run(runner, env)
        if monitor is not None:
            # terminal frame before the footer seals the journal
            monitor.finish(result.makespan)
        if writer is not None:
            trace = env.cluster.trace.summary()
            writer.write_footer(
                makespan=result.makespan,
                virtual_end=env.cluster.sim.now,
                trace_records=trace["records"],
                trace_dropped=trace["dropped"],
                trace_max_records=trace["max_records"],
            )
        return env, result, wall, prof, writer, monitor

    hamr_result = hadoop_result = None
    hamr_obs = hadoop_obs = None
    hamr_wall = hadoop_wall = 0.0
    hamr_prof = hadoop_prof = None
    hamr_dropped = hadoop_dropped = 0
    hamr_writer = hadoop_writer = None
    hamr_monitor = hadoop_monitor = None
    if engines in ("both", "hamr"):
        env, hamr_result, hamr_wall, hamr_prof, hamr_writer, hamr_monitor = _engine_run(
            workload.run_hamr, "hamr"
        )
        hamr_obs = env.obs if obs else None
        hamr_dropped = env.cluster.trace.dropped
    if engines in ("both", "hadoop"):
        env, hadoop_result, hadoop_wall, hadoop_prof, hadoop_writer, hadoop_monitor = (
            _engine_run(workload.run_hadoop, "hadoop")
        )
        hadoop_obs = env.obs if obs else None
        hadoop_dropped = env.cluster.trace.dropped
    return BenchmarkRow(
        name=workload.name,
        label=workload.label,
        data_size=workload.data_size,
        idh_seconds=hadoop_result.makespan if hadoop_result else 0.0,
        hamr_seconds=hamr_result.makespan if hamr_result else 0.0,
        paper=PAPER_TABLE2.get(workload.name),
        hamr_result=hamr_result,
        hadoop_result=hadoop_result,
        hamr_obs=hamr_obs,
        hadoop_obs=hadoop_obs,
        hamr_wall_seconds=hamr_wall,
        hadoop_wall_seconds=hadoop_wall,
        hamr_hostprof=hamr_prof,
        hadoop_hostprof=hadoop_prof,
        hamr_trace_dropped=hamr_dropped,
        hadoop_trace_dropped=hadoop_dropped,
        hamr_journal=hamr_writer,
        hadoop_journal=hadoop_writer,
        hamr_watch=hamr_monitor,
        hadoop_watch=hadoop_monitor,
    )
