"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    python -m repro.evaluation table1
    python -m repro.evaluation table2 [--fidelity small]
    python -m repro.evaluation table3 [--fidelity small]
    python -m repro.evaluation fig3a  [--fidelity small]
    python -m repro.evaluation fig3b  [--fidelity small]
    python -m repro.evaluation all    [--fidelity small]
    python -m repro.evaluation bench NAME [--fidelity small]   # one Table 2 row
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation.figures import figure3a, figure3b
from repro.evaluation.runner import run_workload
from repro.evaluation.tables import table1, table2, table3
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the HAMR paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=["table1", "table2", "table3", "fig3a", "fig3b", "all", "bench"],
    )
    parser.add_argument("name", nargs="?", help="benchmark name for `bench`")
    parser.add_argument(
        "--fidelity",
        default="small",
        choices=["tiny", "small", "medium"],
        help="real-data budget (small = reference; see DESIGN.md §7)",
    )
    args = parser.parse_args(argv)

    if args.artifact == "table1":
        print(table1())
        return 0
    if args.artifact == "bench":
        if not args.name:
            parser.error("bench requires a benchmark name " f"(one of {TABLE2_ORDER})")
        row = run_workload(workload_by_name(args.name, args.fidelity))
        print(
            f"{row.label} ({row.data_size}): IDH {row.idh_seconds:.3f}s, "
            f"HAMR {row.hamr_seconds:.3f}s, speedup {row.speedup:.2f}x "
            f"(paper {row.paper.speedup:.2f}x)"
        )
        return 0

    def progress(name: str) -> None:
        print(f"  running {name} ...", file=sys.stderr, flush=True)

    if args.artifact in ("table2", "all"):
        result = table2(args.fidelity, progress=progress)
        print(result.rendered)
        print()
        if args.artifact == "table2":
            return 0
    else:
        result = None

    if args.artifact in ("table3", "all"):
        rows = result.rows if result is not None else None
        print(table3(args.fidelity, baseline_rows=rows).rendered)
        print()
        if args.artifact == "table3":
            return 0

    if args.artifact in ("fig3a", "all"):
        rows = result.rows if result is not None else None
        print(figure3a(args.fidelity, rows=rows).rendered)
        print()
        if args.artifact == "fig3a":
            return 0

    if args.artifact in ("fig3b", "all"):
        rows = result.rows if result is not None else None
        print(figure3b(args.fidelity, rows=rows).rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
