"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    python -m repro.evaluation table1
    python -m repro.evaluation table2 [--fidelity small]
    python -m repro.evaluation table3 [--fidelity small]
    python -m repro.evaluation fig3a  [--fidelity small]
    python -m repro.evaluation fig3b  [--fidelity small]
    python -m repro.evaluation all    [--fidelity small]
    python -m repro.evaluation bench NAME [--fidelity small]   # one Table 2 row
    python -m repro.evaluation report [--workload wordcount] [--engine both]
                                      [--json out.json] [--chrome trace.json]
    python -m repro.evaluation timeline [--workload wordcount|all] [--engine both]
                                      [--bins 60] [--json out.json]
                                      [--chrome trace.json]
    python -m repro.evaluation diff A.json B.json [--tolerance 0.01]
                                      [--fail-on-drift] [--json delta.json]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.evaluation.figures import figure3a, figure3b
from repro.evaluation.runner import run_workload
from repro.evaluation.tables import table1, table2, table3
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the HAMR paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=[
            "table1", "table2", "table3", "fig3a", "fig3b", "all", "bench",
            "report", "timeline", "diff",
        ],
    )
    parser.add_argument(
        "name", nargs="?",
        help="benchmark name for `bench`; baseline artifact A for `diff`",
    )
    parser.add_argument(
        "name2", nargs="?", help="candidate artifact B for `diff`"
    )
    parser.add_argument(
        "--fidelity",
        default="small",
        choices=["tiny", "small", "medium"],
        help="real-data budget (small = reference; see DESIGN.md §7)",
    )
    parser.add_argument(
        "--workload",
        default="wordcount",
        choices=list(TABLE2_ORDER) + ["all"],
        help="workload for `report`/`timeline` (`all` = every Table 2 workload)",
    )
    parser.add_argument(
        "--engine",
        default="both",
        choices=["both", "hamr", "hadoop"],
        help="engine(s) to trace for `report`/`timeline`",
    )
    parser.add_argument(
        "--bins",
        type=int,
        default=60,
        help="time bins per telemetry heatmap row for `timeline` (default 60)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the report/diff as JSON")
    parser.add_argument(
        "--chrome", metavar="PATH", help="write a Chrome/Perfetto trace-event file"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative virtual-seconds drift tolerance for `diff` (default 1%%)",
    )
    parser.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="`diff`: exit non-zero when any workload drifts beyond tolerance",
    )
    args = parser.parse_args(argv)

    if args.artifact == "report":
        if args.workload == "all":
            parser.error("report supports a single --workload (not `all`)")
        return _report(args)
    if args.artifact == "timeline":
        return _timeline(args)
    if args.artifact == "diff":
        if not args.name or not args.name2:
            parser.error("diff requires two artifact paths: A.json B.json")
        return _diff(args)

    if args.artifact == "table1":
        print(table1())
        return 0
    if args.artifact == "bench":
        if not args.name:
            parser.error("bench requires a benchmark name " f"(one of {TABLE2_ORDER})")
        row = run_workload(workload_by_name(args.name, args.fidelity))
        print(
            f"{row.label} ({row.data_size}): IDH {row.idh_seconds:.3f}s, "
            f"HAMR {row.hamr_seconds:.3f}s, speedup {row.speedup:.2f}x "
            f"(paper {row.paper.speedup:.2f}x)"
        )
        return 0

    def progress(name: str) -> None:
        print(f"  running {name} ...", file=sys.stderr, flush=True)

    if args.artifact in ("table2", "all"):
        result = table2(args.fidelity, progress=progress)
        print(result.rendered)
        print()
        if args.artifact == "table2":
            return 0
    else:
        result = None

    if args.artifact in ("table3", "all"):
        rows = result.rows if result is not None else None
        print(table3(args.fidelity, baseline_rows=rows).rendered)
        print()
        if args.artifact == "table3":
            return 0

    if args.artifact in ("fig3a", "all"):
        rows = result.rows if result is not None else None
        print(figure3a(args.fidelity, rows=rows).rendered)
        print()
        if args.artifact == "fig3a":
            return 0

    if args.artifact in ("fig3b", "all"):
        rows = result.rows if result is not None else None
        print(figure3b(args.fidelity, rows=rows).rendered)
    return 0


def _diff(args) -> int:
    """Compare two observability artifacts; optionally gate on drift."""
    from repro.obs.diff import diff_artifacts, load_artifact, render_diff

    a = load_artifact(args.name)
    b = load_artifact(args.name2)
    result = diff_artifacts(a, b, tolerance=args.tolerance)
    print(render_diff(result, label_a=args.name, label_b=args.name2))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json(indent=2) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.fail_on_drift and not result.ok:
        return 1
    return 0


def _timeline(args) -> int:
    """Run traced workload(s) and print/export the telemetry report."""
    from repro.evaluation.telemetryreport import (
        TIMELINE_SCHEMA,
        render_telemetry,
        telemetry_dict,
    )

    workloads = list(TABLE2_ORDER) if args.workload == "all" else [args.workload]
    exported: dict[str, dict] = {}
    chrome_pick = None
    for name in workloads:
        if len(workloads) > 1:
            print(f"  running {name} ...", file=sys.stderr, flush=True)
        row = run_workload(
            workload_by_name(name, args.fidelity), engines=args.engine, obs=True
        )
        traced = [
            (engine, tracer)
            for engine, tracer in (("hamr", row.hamr_obs), ("hadoop", row.hadoop_obs))
            if tracer is not None
        ]
        for engine, tracer in traced:
            makespan = row.hamr_seconds if engine == "hamr" else row.idh_seconds
            print(
                render_telemetry(
                    tracer,
                    title=f"== {row.label} ({row.data_size}) on {engine} — "
                    f"makespan {makespan:.3f}s ==",
                    bins=args.bins,
                )
            )
            print()
            exported.setdefault(name, {})[engine] = telemetry_dict(
                tracer, name, engine, bins=args.bins
            )
        if chrome_pick is None and traced:
            chrome_pick = (workloads[0], *traced[0])
    if args.json:
        payload = {
            "schema": TIMELINE_SCHEMA,
            "fidelity": args.fidelity,
            "workloads": exported,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.chrome and chrome_pick is not None:
        workload, engine, tracer = chrome_pick
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(), fh, sort_keys=True)
        print(f"wrote {args.chrome} ({workload} on {engine})", file=sys.stderr)
    return 0


def _report(args) -> int:
    """Run one traced workload and print/export the observability report."""
    from repro.evaluation.obsreport import REPORT_SCHEMA, render_report, report_dict

    row = run_workload(
        workload_by_name(args.workload, args.fidelity), engines=args.engine, obs=True
    )
    traced = [
        (engine, tracer)
        for engine, tracer in (("hamr", row.hamr_obs), ("hadoop", row.hadoop_obs))
        if tracer is not None
    ]
    for engine, tracer in traced:
        makespan = row.hamr_seconds if engine == "hamr" else row.idh_seconds
        print(
            render_report(
                tracer,
                title=f"== {row.label} ({row.data_size}) on {engine} — "
                f"makespan {makespan:.3f}s ==",
            )
        )
        print()
    if args.json:
        payload = {
            "schema": REPORT_SCHEMA,
            "workload": args.workload,
            "engines": {
                engine: report_dict(tracer, args.workload, engine)
                for engine, tracer in traced
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.chrome:
        # one merged trace file; engines run on separate virtual clusters,
        # so export the first traced engine (use --engine to pick).
        engine, tracer = traced[0]
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(), fh, sort_keys=True)
        print(f"wrote {args.chrome} ({engine} run)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
