"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    python -m repro.evaluation table1
    python -m repro.evaluation table2 [--fidelity small]
    python -m repro.evaluation table3 [--fidelity small]
    python -m repro.evaluation fig3a  [--fidelity small]
    python -m repro.evaluation fig3b  [--fidelity small]
    python -m repro.evaluation all    [--fidelity small]
    python -m repro.evaluation bench NAME [--fidelity small]   # one Table 2 row
    python -m repro.evaluation report [--workload wordcount] [--engine both]
                                      [--json out.json] [--chrome trace.json]
    python -m repro.evaluation timeline [--workload wordcount|all] [--engine both]
                                      [--bins 60] [--json out.json]
                                      [--chrome trace.json]
    python -m repro.evaluation diff A.json B.json [--tolerance 0.01]
                                      [--host-tolerance 0.15]
                                      [--fail-on-drift] [--json delta.json]
    python -m repro.evaluation profile [--workload wordcount|all] [--engine both]
                                      [--json prof.json] [--chrome trace.json]
    python -m repro.evaluation calibrate [--workload wordcount|all] [--engine both]
                                      [--json cal.json]
    python -m repro.evaluation journal [--workload wordcount|all] [--engine both]
                                      [--out run]        # run.<wl>.<engine>.journal.jsonl
    python -m repro.evaluation replay run.wordcount.hamr.journal.jsonl
                                      [--view report|timeline|critpath]
                                      [--bins 60] [--json out.json] [--chrome t.json]
    python -m repro.evaluation explain A B   # journal files or workload:engine specs
                                      [--fidelity small] [--json delta.json]
    python -m repro.evaluation watch [WORKLOAD] [ENGINE]
                                      [--interval 25] [--stall-window 300]
                                      [--slo-spec spec.json] [--out run]
                                      [--json watch.json]
    python -m repro.evaluation slo [BENCH.json | WORKLOAD ENGINE]
                                      [--slo-spec spec.json] [--json slo.json]
    python -m repro.evaluation trend [BENCH_history.jsonl]
                                      [--metric virtual_seconds]
                                      [--window N]
                                      [--fail-on-shift] [--json trend.json]
    python -m repro.evaluation whatif <journal | workload:engine>
                                      [--scenario net=2.0,disk=0.5,nodes=16]
                                      [--sweep nodes=4..32]
                                      [--execute | --validate] [--max-error F]
                                      [--emit-journal PATH] [--allow-partial]
                                      [--json whatif.json]
    python -m repro.evaluation corpus ingest <dir-or-journal>
                                      [--index corpus.jsonl] [--allow-partial]
    python -m repro.evaluation corpus ls [--index corpus.jsonl]
                                      [--where workload=wordcount,engine=hamr]
                                      [--json rows.json]
    python -m repro.evaluation corpus show <fingerprint-prefix>
                                      [--index corpus.jsonl] [--json row.json]
    python -m repro.evaluation doctor <specA> <specB>
                                      [--index corpus.jsonl] [--allow-partial]
                                      [--json doctor.json]
    python -m repro.evaluation doctor --shift workload:engine[@fabric][+part]
                                      [--history BENCH_history.jsonl]
                                      [--metric virtual_seconds]
                                      [--index corpus.jsonl] [--json doctor.json]
    python -m repro.evaluation analytics [--index corpus.jsonl]
                                      [--where engine=hamr] [--workers 3]
                                      [--json analytics.json]

Every ``--json PATH`` accepts ``-`` to write the JSON document to stdout
(the human-readable report then goes nowhere — stdout carries only JSON).

Every live-run subcommand (bench/report/timeline/profile/calibrate/
journal/watch/slo and explain's workload:engine specs) accepts
``--fabric {direct,tree,twolevel,rdma}``, ``--partitioner {hash,shard}``
and ``--racks N`` to swap the exchange fabric, partition-ownership
strategy and rack topology (DESIGN.md "Exchange fabrics"). The defaults
reproduce the legacy direct path byte-identically; off-direct runs label
engine columns ``engine@fabric`` and stamp the fabric into journals and
JSON payloads so ``diff``/``explain`` never silently compare across
fabrics.

``journal`` writes one durable JSONL run journal per workload × engine;
``replay`` reconstructs the live run's report/timeline/critical-path
output **byte-identically** from a journal alone (no re-execution), and
``explain`` aligns two runs and attributes their makespan delta to blame
buckets, operators and nodes along the differential critical path. With
``REPRO_OBS_SLOWDOWN=<bucket>=<factor>`` set, ``journal`` additionally
dilates the written journals into a seeded synthetic regression (the
``explain`` self-test in CI).

Journal paths ending in ``.gz`` are transparently gzip-compressed (same
canonical encoding; ``replay`` output stays byte-identical either way),
and a journal whose run died before the footer was written is rejected
with exit code 2 unless ``--allow-partial`` reconstructs a best-effort
footer up to the last complete event.

``corpus`` is the deterministic journal warehouse (:mod:`repro.obs.
corpus`): ``ingest`` scans for ``*.jsonl[.gz]`` journals, replays each
one once, and merges compact summary rows (identity, makespan, blame,
critical path, traffic, straggler stats) into a canonical JSONL index
deduplicated by run fingerprint — re-ingesting is idempotent and the
index is byte-identical across reruns. ``doctor`` resolves two run
specs (journal paths, fingerprint prefixes, or unique
``workload:engine[@fabric][+partitioner]`` selectors) against the index
and chains explain + integrity audit + skew + traffic drift into one
ranked root-cause report with confidence tiers and a ready-to-run
``whatif`` counter-scenario; ``doctor --shift`` consumes a ``trend``
SHIFT verdict and auto-picks the baseline/regressed pair by producing
commit. ``analytics`` exports the index as SQL tables and runs the
canned fleet queries on **both** engines (flowlet compiler and
MapReduce executor), exiting 1 if any query's results diverge.

``whatif`` is the counterfactual capacity-planning engine
(:mod:`repro.obs.whatif`): it loads a run journal (or runs
``workload:engine`` live first), applies a declarative scenario — bucket
speed multipliers (``disk=0.5`` = disk at half speed; aliases
``net``/``cpu``/``io``), ``serde=S``, ``nodes=N`` cluster rescaling,
``fabric=NAME``/``racks=N`` swaps — and reports the predicted makespan
with optimistic/pessimistic bounds. ``--sweep nodes=4..32`` predicts a
capacity curve; ``--execute`` re-runs the one requested scenario for
real and reports the prediction error; ``--validate`` runs the whole
executable validation matrix (identity + bucket dilations + node
rescales + fabric swaps) and ``--max-error F`` turns the worst absolute
error into an exit-1 gate. Bucket-only scenarios are **exact**:
``--emit-journal`` writes the dilated journal, byte-identical to a
``REPRO_OBS_SLOWDOWN``-seeded re-run.

``watch`` runs workloads with the live progress engine on: periodic
virtual-time dashboard frames (per-stage completion, ETA, flow-control
gauges, watchdog verdict), journaled as ``fr`` records so ``replay
--view watch`` re-renders them byte-identically. ``slo`` checks a
committed BENCH artifact — or a live run — against the declarative
per-workload SLO specs and exits 1 on any breach. ``trend`` runs
median+MAD change-point detection over ``BENCH_history.jsonl`` (see
``benchmarks/bench_obs.py --append-history``) and exits 1 with
``--fail-on-shift`` when a sustained shift is detected.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.evaluation.figures import figure3a, figure3b
from repro.evaluation.runner import run_workload
from repro.evaluation.tables import table1, table2, table3
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the HAMR paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=[
            "table1", "table2", "table3", "fig3a", "fig3b", "all", "bench",
            "report", "timeline", "diff", "profile", "calibrate",
            "journal", "replay", "explain", "watch", "slo", "trend",
            "whatif", "corpus", "doctor", "analytics",
        ],
    )
    parser.add_argument(
        "name", nargs="?",
        help="benchmark name for `bench`; baseline artifact A for `diff`; "
        "journal path for `replay`; run A (journal path or workload:engine) "
        "for `explain`; workload (or BENCH artifact for `slo`) for "
        "`watch`/`slo`; history path for `trend`; journal path or "
        "workload:engine for `whatif`; subcommand (ingest/ls/show) for "
        "`corpus`; run A spec (or shifted series with --shift) for `doctor`",
    )
    parser.add_argument(
        "name2", nargs="?",
        help="candidate artifact B for `diff`; run B for `explain`; "
        "engine for `watch`/`slo`; ingest target or show fingerprint for "
        "`corpus`; run B spec for `doctor`",
    )
    parser.add_argument(
        "--fidelity",
        default="small",
        choices=["tiny", "small", "medium"],
        help="real-data budget (small = reference; see DESIGN.md §7)",
    )
    parser.add_argument(
        "--workload",
        default="wordcount",
        help="workload for `report`/`timeline`/`profile`/`calibrate` "
        "(`all` = every Table 2 workload)",
    )
    parser.add_argument(
        "--engine",
        default="both",
        help="engine(s) to trace: both, hamr, or hadoop",
    )
    parser.add_argument(
        "--bins",
        type=int,
        default=60,
        help="time bins per telemetry heatmap row for `timeline` (default 60)",
    )
    parser.add_argument(
        "--fabric",
        default="direct",
        choices=["direct", "tree", "twolevel", "rdma"],
        help="exchange fabric for live runs (bench/report/timeline/profile/"
        "calibrate/journal/watch/slo); direct is the legacy byte-identical "
        "path (see DESIGN.md)",
    )
    parser.add_argument(
        "--partitioner",
        default="hash",
        choices=["hash", "shard"],
        help="partition-ownership strategy: hash (owner = partition %% "
        "workers) or shard (locality-first — owners are the nodes holding "
        "input shards)",
    )
    parser.add_argument(
        "--racks",
        type=int,
        default=None,
        metavar="N",
        help="split the cluster's workers into N racks of contiguous "
        "workers (twolevel defaults to 4 racks when unset; rack traffic "
        "is then split into inter/intra-rack bytes)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the report/diff as JSON (`-` = JSON to stdout, no ASCII report)",
    )
    parser.add_argument(
        "--chrome", metavar="PATH", help="write a Chrome/Perfetto trace-event file"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="relative virtual-seconds drift tolerance for `diff` (default 1%%)",
    )
    parser.add_argument(
        "--host-tolerance",
        type=float,
        default=0.15,
        help="`diff`: absolute hostprof bucket-share drift band (default 0.15)",
    )
    parser.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="`diff`: exit non-zero when any workload drifts beyond tolerance",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PREFIX",
        help="`journal`/`watch`: output prefix — writes PREFIX.<workload>"
        ".<engine>.journal.jsonl (a PREFIX ending in .jsonl or .jsonl.gz "
        "with a single workload and engine is used as the exact path — "
        ".gz writes a gzip journal; `journal` defaults to `run`, `watch` "
        "writes no journal files unless given)",
    )
    parser.add_argument(
        "--view",
        default="report",
        choices=["report", "timeline", "critpath", "watch"],
        help="`replay`: which derived view to reconstruct (default report)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=25.0,
        metavar="SECONDS",
        help="`watch`: virtual seconds between dashboard frames (default 25)",
    )
    parser.add_argument(
        "--stall-window",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="`watch`: flag STALLED when no tracked counter advances for "
        "this many virtual seconds (default 300)",
    )
    parser.add_argument(
        "--slo-spec", metavar="PATH",
        help="`watch`/`slo`: JSON SLO overrides "
        '({"workload:engine": {"makespan_budget": ...}, "*": {...}})',
    )
    parser.add_argument(
        "--metric",
        default="virtual_seconds",
        choices=["virtual_seconds", "stall_share", "traffic_bytes", "wall_seconds"],
        help="`trend`: which history metric to scan (default virtual_seconds)",
    )
    parser.add_argument(
        "--fail-on-shift",
        action="store_true",
        help="`trend`: exit non-zero when a sustained shift is detected",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=4,
        metavar="N",
        help="`trend`: reference rows required before verdicts (default 4)",
    )
    parser.add_argument(
        "--sustain",
        type=int,
        default=2,
        metavar="N",
        help="`trend`: consecutive out-of-band rows that confirm a shift "
        "(default 2)",
    )
    parser.add_argument(
        "--mad-threshold",
        type=float,
        default=4.0,
        metavar="K",
        help="`trend`: band half-width in robust sigmas (default 4.0)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="`trend`: only scan the last N history rows (default: all)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC",
        help="`whatif`: comma-separated counterfactual, e.g. "
        "net=2.0,disk=0.5,nodes=16,fabric=rdma — bucket values are SPEED "
        "multipliers (2.0 = twice as fast); empty/`identity` predicts the "
        "journal's own makespan exactly",
    )
    parser.add_argument(
        "--sweep",
        default=None,
        metavar="KEY=RANGE",
        help="`whatif`: capacity curve over one knob — `nodes=4..32` "
        "(doubling), `nodes=4..16:4` (linear step), `disk=0.25,0.5,2` "
        "(explicit list)",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="`whatif`: actually run the requested scenario (simulation "
        "re-run) and report the prediction error",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="`whatif`: run the full executable validation matrix "
        "(dilations, node rescales, fabric swaps) and report per-scenario "
        "prediction error",
    )
    parser.add_argument(
        "--max-error",
        type=float,
        default=None,
        metavar="F",
        help="`whatif`: exit 1 when any executed scenario's |prediction "
        "error| exceeds F (e.g. 0.35 = 35%%)",
    )
    parser.add_argument(
        "--emit-journal",
        default=None,
        metavar="PATH",
        help="`whatif`: write the scenario-transformed journal (bucket-only "
        "scenarios; byte-identical to a REPRO_OBS_SLOWDOWN-seeded re-run; "
        "`.gz` compresses)",
    )
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="`replay`/`explain`/`whatif`/`corpus`/`doctor`: accept a "
        "truncated (footer-less) journal and reconstruct a best-effort "
        "footer up to the last complete event (`corpus ingest` additionally "
        "skips undecodable files instead of aborting)",
    )
    parser.add_argument(
        "--index",
        default=None,
        metavar="PATH",
        help="`corpus`/`doctor`/`analytics`: the corpus index file "
        "(default corpus.jsonl)",
    )
    parser.add_argument(
        "--where",
        default=None,
        metavar="COL=VAL,...",
        help="`corpus ls`/`analytics`: keep only index rows matching every "
        "column=value constraint (values parsed as JSON, else strings)",
    )
    parser.add_argument(
        "--shift",
        action="store_true",
        help="`doctor`: treat the run spec as a shifted trend series "
        "(workload:engine[@fabric][+partitioner]), re-run the detector over "
        "--history and auto-pick the baseline/regressed journal pair",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="`doctor --shift`: the BENCH history file "
        "(default BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=3,
        metavar="N",
        help="`analytics`: simulated workers per engine cluster (default 3)",
    )
    parser.add_argument(
        "--trace-max-records",
        type=int,
        default=None,
        metavar="N",
        help="bound the sim-trace ring buffer for `report`/`timeline`/"
        "`journal` (oldest records are evicted past N; evictions are "
        "surfaced as a WARNING and counted in journal footers)",
    )
    args = parser.parse_args(argv)

    if args.trace_max_records is not None and args.trace_max_records <= 0:
        print(
            f"error: --trace-max-records must be positive "
            f"(got {args.trace_max_records})",
            file=sys.stderr,
        )
        return 2
    if args.racks is not None and args.racks <= 0:
        print(
            f"error: --racks must be positive (got {args.racks})",
            file=sys.stderr,
        )
        return 2
    if args.artifact == "report":
        if args.workload == "all":
            parser.error("report supports a single --workload (not `all`)")
        return _report(args)
    if args.artifact == "timeline":
        return _timeline(args)
    if args.artifact == "profile":
        return _profile(args)
    if args.artifact == "calibrate":
        return _calibrate(args)
    if args.artifact == "watch":
        return _watch(args)
    if args.artifact == "slo":
        return _slo(args)
    if args.artifact == "trend":
        return _trend(args)
    if args.artifact == "diff":
        if not args.name or not args.name2:
            parser.error("diff requires two artifact paths: A.json B.json")
        return _diff(args)
    if args.artifact == "journal":
        return _journal(args)
    if args.artifact == "replay":
        if not args.name:
            parser.error("replay requires a journal path")
        return _replay(args)
    if args.artifact == "explain":
        if not args.name or not args.name2:
            parser.error(
                "explain requires two runs: journal paths or workload:engine specs"
            )
        return _explain(args)
    if args.artifact == "whatif":
        if not args.name:
            parser.error(
                "whatif requires a run: a journal path or workload:engine spec"
            )
        return _whatif(args)
    if args.artifact == "corpus":
        if args.name not in ("ingest", "ls", "show"):
            parser.error("corpus requires a subcommand: ingest, ls or show")
        return _corpus(args)
    if args.artifact == "doctor":
        if args.shift:
            if not args.name or args.name2:
                parser.error(
                    "doctor --shift takes exactly one shifted series spec "
                    "(workload:engine[@fabric][+partitioner])"
                )
        elif not args.name or not args.name2:
            parser.error(
                "doctor requires two run specs (journal paths, corpus "
                "fingerprints or workload:engine selectors), or --shift "
                "with one series spec"
            )
        return _doctor(args)
    if args.artifact == "analytics":
        return _analytics(args)

    if args.artifact == "table1":
        print(table1())
        return 0
    if args.artifact == "bench":
        if not args.name:
            parser.error("bench requires a benchmark name " f"(one of {TABLE2_ORDER})")
        workload = workload_by_name(args.name, args.fidelity)
        row = run_workload(workload, **_fabric_opts(args, workload))
        suffix = "" if args.fabric == "direct" else f" [{args.fabric} fabric]"
        print(
            f"{row.label} ({row.data_size}): IDH {row.idh_seconds:.3f}s, "
            f"HAMR {row.hamr_seconds:.3f}s, speedup {row.speedup:.2f}x "
            f"(paper {row.paper.speedup:.2f}x){suffix}"
        )
        return 0

    def progress(name: str) -> None:
        print(f"  running {name} ...", file=sys.stderr, flush=True)

    if args.artifact in ("table2", "all"):
        result = table2(args.fidelity, progress=progress)
        print(result.rendered)
        print()
        if args.artifact == "table2":
            return 0
    else:
        result = None

    if args.artifact in ("table3", "all"):
        rows = result.rows if result is not None else None
        print(table3(args.fidelity, baseline_rows=rows).rendered)
        print()
        if args.artifact == "table3":
            return 0

    if args.artifact in ("fig3a", "all"):
        rows = result.rows if result is not None else None
        print(figure3a(args.fidelity, rows=rows).rendered)
        print()
        if args.artifact == "fig3a":
            return 0

    if args.artifact in ("fig3b", "all"):
        rows = result.rows if result is not None else None
        print(figure3b(args.fidelity, rows=rows).rendered)
    return 0


def _expand_filters(args):
    """Validate ``--workload``/``--engine`` and expand them to lists.

    The one place the per-run subcommands (report/timeline/profile/
    calibrate/journal/watch/slo/trend) share their filter wiring: returns
    ``(workloads, engines)``, or the exit code 2 after printing the error
    (callers ``return`` it unchanged).
    """
    if args.workload not in list(TABLE2_ORDER) + ["all"]:
        print(
            f"error: unknown workload {args.workload!r} "
            f"(choose from: {', '.join(TABLE2_ORDER)}, all)",
            file=sys.stderr,
        )
        return 2
    if args.engine not in ("both", "hamr", "hadoop"):
        print(
            f"error: unknown engine {args.engine!r} "
            "(choose from: both, hamr, hadoop)",
            file=sys.stderr,
        )
        return 2
    workloads = list(TABLE2_ORDER) if args.workload == "all" else [args.workload]
    engines = ["hamr", "hadoop"] if args.engine == "both" else [args.engine]
    return workloads, engines


def _fabric_opts(args, workload) -> dict:
    """run_workload kwargs for the ``--fabric``/``--partitioner``/``--racks``
    flags.

    ``--racks N`` counts *racks*; it is converted to workers-per-rack
    against the workload's cluster spec (contiguous worker groups, the
    paper's 16-node testbed split N ways). The defaults map to ``None``
    so the flagless path stays byte-identical to the legacy wiring.
    """
    rack_size = None
    if args.racks is not None:
        rack_size = max(1, workload.spec().num_workers // args.racks)
    return {
        "fabric": None if args.fabric == "direct" else args.fabric,
        "partitioner": None if args.partitioner == "hash" else args.partitioner,
        "rack_size": rack_size,
    }


def _engine_label(engine: str, fabric: str) -> str:
    """Display label for an engine column: ``engine@fabric`` off-direct,
    matching :meth:`repro.obs.replay.ReplayedRun.title`."""
    return engine if fabric == "direct" else f"{engine}@{fabric}"


def _engine_column(row, engine: str, attr: str):
    """The per-engine field of a BenchmarkRow (``hamr_obs``/``hadoop_obs``,
    journals, monitors, drop counters, makespans...)."""
    if attr == "seconds":
        return row.hamr_seconds if engine == "hamr" else row.idh_seconds
    return getattr(row, f"{engine}_{attr}")


def _emit_json(path: str, payload: dict, note: str = "") -> None:
    """Write a JSON document to ``path``, or to stdout when path is ``-``."""
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w") as fh:
        fh.write(text)
    print(f"wrote {path}" + (f" ({note})" if note else ""), file=sys.stderr)


def _diff(args) -> int:
    """Compare two observability artifacts; optionally gate on drift."""
    from repro.obs.diff import diff_artifacts, load_artifact, render_diff

    a = load_artifact(args.name)
    b = load_artifact(args.name2)
    result = diff_artifacts(
        a, b, tolerance=args.tolerance, host_tolerance=args.host_tolerance
    )
    if not any(result.rows.values()):
        print(
            "error: the two artifacts share no workload × engine rows — "
            "nothing to compare",
            file=sys.stderr,
        )
        return 2
    if args.json != "-":
        print(render_diff(result, label_a=args.name, label_b=args.name2))
    if args.json:
        _emit_json(args.json, result.to_dict())
    if args.fail_on_drift and not result.ok:
        return 1
    return 0


def _warn_dropped(dropped: int, context: str) -> None:
    """Surface sim-trace ring-buffer evictions (satellite of the journal
    work: silently truncated traces must never read as complete)."""
    if dropped:
        print(
            f"WARNING: {dropped} trace records dropped ({context}; "
            "raise --trace-max-records to keep them)",
            file=sys.stderr,
        )


def _journal_path(out: str, workloads: list[str], engines: list[str],
                  workload: str, engine: str) -> str:
    """Output path for one run's journal under the --out prefix.

    A prefix ending in ``.jsonl`` / ``.jsonl.gz`` with a single workload
    and engine is used verbatim (``.gz`` writes gzip; see
    :func:`repro.obs.journal.journal_open`).
    """
    if out.endswith((".jsonl", ".jsonl.gz")) and len(workloads) == 1 and len(engines) == 1:
        return out
    stem = out
    if stem.endswith(".gz"):
        stem = stem[: -len(".gz")]
    if stem.endswith(".jsonl"):
        stem = stem[: -len(".jsonl")]
    if stem.endswith(".journal"):
        stem = stem[: -len(".journal")]
    return f"{stem}.{workload}.{engine}.journal.jsonl"


def _journal(args) -> int:
    """Run workload(s) with journaling on; write one JSONL file per run."""
    from repro.obs.journal import (
        JournalWriter,
        bucket_slowdown_from_env,
        encode_record,
        journal_open,
        seed_bucket_slowdown,
    )

    filters = _expand_filters(args)
    if isinstance(filters, int):
        return filters
    workloads, engines = filters
    out = args.out or "run"
    seeded = bucket_slowdown_from_env()
    for name in workloads:
        if len(workloads) > 1:
            print(f"  running {name} ...", file=sys.stderr, flush=True)
        workload = workload_by_name(name, args.fidelity)
        row = run_workload(
            workload,
            engines=args.engine,
            journal=lambda engine: JournalWriter(meta={"fidelity": args.fidelity}),
            trace_max_records=args.trace_max_records,
            **_fabric_opts(args, workload),
        )
        for engine in engines:
            writer = _engine_column(row, engine, "journal")
            _warn_dropped(
                _engine_column(row, engine, "trace_dropped"), f"{name} on {engine}"
            )
            path = _journal_path(out, workloads, engines, name, engine)
            if seeded is not None:
                bucket, factor = seeded
                records = seed_bucket_slowdown(writer.records, bucket, factor)
                with journal_open(path, "w") as fh:
                    for record in records:
                        fh.write(encode_record(record) + "\n")
                print(
                    f"wrote {path} ({len(records) - 2} events, seeded "
                    f"{bucket}x{factor:g} slowdown)",
                    file=sys.stderr,
                )
            else:
                writer.save(path)
                print(f"wrote {path} ({writer.events} events)", file=sys.stderr)
    return 0


def _watch(args) -> int:
    """Run workload(s) with the live progress engine; print the dashboard.

    Frames are journaled (``wcfg``/``fr`` records), so with ``--out`` the
    saved journal replays the dashboard byte-identically via ``replay
    --view watch``. With ``REPRO_OBS_SLOWDOWN=<bucket>=<factor>`` the
    journal is dilated first and the dashboard renders the slowed
    timeline (ETAs and watchdog verdicts recomputed).
    """
    from repro.obs.journal import (
        JournalWriter,
        bucket_slowdown_from_env,
        encode_record,
        journal_open,
        seed_bucket_slowdown,
    )
    from repro.obs.live import (
        LIVE_SCHEMA,
        STATUS_RUNNING,
        STATUS_STALLED,
        LiveMonitor,
        WatchConfig,
        render_watch,
    )
    from repro.obs.slo import load_slo_file, spec_for

    if args.name:
        args.workload = args.name
    if args.name2:
        args.engine = args.name2
    filters = _expand_filters(args)
    if isinstance(filters, int):
        return filters
    workloads, engines = filters
    if args.interval <= 0:
        print(
            f"error: --interval must be positive (got {args.interval:g})",
            file=sys.stderr,
        )
        return 2
    overrides = None
    if args.slo_spec:
        try:
            overrides = load_slo_file(args.slo_spec)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    config = WatchConfig(interval=args.interval, window=args.stall_window)
    seeded = bucket_slowdown_from_env()
    exported: dict[str, dict] = {}
    for name in workloads:
        if len(workloads) > 1:
            print(f"  running {name} ...", file=sys.stderr, flush=True)

        def _monitor(engine, tracer, workload=name):
            return LiveMonitor(
                tracer, config=config, slo=spec_for(workload, engine, overrides)
            )

        workload = workload_by_name(name, args.fidelity)
        row = run_workload(
            workload,
            engines=args.engine,
            journal=lambda engine: JournalWriter(meta={"fidelity": args.fidelity}),
            watch=_monitor,
            trace_max_records=args.trace_max_records,
            **_fabric_opts(args, workload),
        )
        for engine in engines:
            monitor = _engine_column(row, engine, "watch")
            writer = _engine_column(row, engine, "journal")
            _warn_dropped(
                _engine_column(row, engine, "trace_dropped"), f"{name} on {engine}"
            )
            records = writer.records
            makespan = _engine_column(row, engine, "seconds")
            frames = monitor.frames
            if seeded is not None:
                bucket, factor = seeded
                records = seed_bucket_slowdown(records, bucket, factor)
                frames = [
                    {k: v for k, v in rec.items() if k != "t"}
                    for rec in records
                    if rec.get("t") == "fr"
                ]
                makespan = records[-1].get("makespan", makespan)
            if args.json != "-":
                label = _engine_label(engine, args.fabric)
                title = f"{row.label} ({row.data_size}) on {label}"
                print(render_watch(title, (config.interval, config.window), frames))
                print()
            exported.setdefault(name, {})[engine] = {
                "interval": config.interval,
                "window": config.window,
                "frames": frames,
                "status": frames[-1]["status"] if frames else STATUS_RUNNING,
                "stalled_frames": sum(
                    1 for f in frames if f["status"] == STATUS_STALLED
                ),
                "makespan": makespan,
            }
            if args.out:
                path = _journal_path(args.out, workloads, engines, name, engine)
                with journal_open(path, "w") as fh:
                    for record in records:
                        fh.write(encode_record(record) + "\n")
                print(f"wrote {path}", file=sys.stderr)
    if args.json:
        payload = {
            "schema": LIVE_SCHEMA,
            "fidelity": args.fidelity,
            "workloads": exported,
        }
        if args.fabric != "direct":
            payload["fabric"] = args.fabric
        _emit_json(args.json, payload)
    return 0


def _slo(args) -> int:
    """Check a BENCH artifact — or live run(s) — against the SLO specs.

    ``slo BENCH.json`` evaluates every workload × engine row the artifact
    holds (straggler CV reports n/a — artifacts carry no per-node
    timelines); ``slo [WORKLOAD] [ENGINE]`` runs the workload traced and
    evaluates the live tracer (CV measurable). Exits 1 on any FAIL.
    """
    import os

    from repro.obs.slo import (
        evaluate_entry,
        evaluate_tracer,
        load_slo_file,
        render_slo,
        slo_dict,
    )

    overrides = None
    if args.slo_spec:
        try:
            overrides = load_slo_file(args.slo_spec)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    results: list[dict] = []
    if args.name and (os.path.exists(args.name) or args.name.endswith(".json")):
        try:
            with open(args.name) as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: {args.name}: {exc}", file=sys.stderr)
            return 2
        schema = payload.get("schema", "") if isinstance(payload, dict) else ""
        if not schema.startswith("repro.obs.bench/"):
            print(
                f"error: {args.name} is not a BENCH artifact "
                f"(schema {schema!r})",
                file=sys.stderr,
            )
            return 2
        for workload in sorted(payload.get("rows", {})):
            per_engine = payload["rows"][workload]
            for engine in ("hamr", "hadoop"):
                entry = per_engine.get(engine)
                if isinstance(entry, dict):
                    results.append(
                        evaluate_entry(workload, engine, entry, overrides)
                    )
        if not results:
            print(
                f"error: {args.name} holds no workload × engine rows",
                file=sys.stderr,
            )
            return 2
        source = args.name
    else:
        if args.name:
            args.workload = args.name
        if args.name2:
            args.engine = args.name2
        filters = _expand_filters(args)
        if isinstance(filters, int):
            return filters
        workloads, engines = filters
        for name in workloads:
            if len(workloads) > 1:
                print(f"  running {name} ...", file=sys.stderr, flush=True)
            workload = workload_by_name(name, args.fidelity)
            row = run_workload(
                workload,
                engines=args.engine,
                obs=True,
                trace_max_records=args.trace_max_records,
                **_fabric_opts(args, workload),
            )
            for engine in engines:
                _warn_dropped(
                    _engine_column(row, engine, "trace_dropped"),
                    f"{name} on {engine}",
                )
                results.append(
                    evaluate_tracer(
                        name,
                        engine,
                        _engine_column(row, engine, "obs"),
                        _engine_column(row, engine, "seconds"),
                        overrides,
                    )
                )
        source = f"live:{args.fidelity}"
    if args.json != "-":
        print(render_slo(results))
    if args.json:
        _emit_json(args.json, slo_dict(results, source))
    return 0 if all(r["ok"] for r in results) else 1


def _trend(args) -> int:
    """Change-point detection over the perf history; optional CI gate."""
    from repro.obs.history import (
        DEFAULT_HISTORY_PATH,
        load_history,
        render_trend,
        trend_report,
    )

    if args.window is not None and args.window <= 0:
        print(
            f"error: --window must be positive (got {args.window})",
            file=sys.stderr,
        )
        return 2
    path = args.name or DEFAULT_HISTORY_PATH
    try:
        history = load_history(path)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not history:
        print(f"error: {path} holds no history rows", file=sys.stderr)
        return 2
    if args.window is not None:
        history = history[-args.window:]
    report = trend_report(
        history,
        metric=args.metric,
        min_history=args.min_history,
        threshold=args.mad_threshold,
        sustain=args.sustain,
    )
    if args.json != "-":
        print(render_trend(report, history_path=path))
    if args.json:
        _emit_json(args.json, report)
    if args.fail_on_shift and report["shifts"]:
        return 1
    return 0


def _replay(args) -> int:
    """Reconstruct report/timeline/critpath output from a journal alone."""
    from repro.obs.journal import JournalError
    from repro.obs.replay import replay_file

    try:
        run = replay_file(args.name, allow_partial=args.allow_partial)
    except (OSError, JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if run.partial:
        print(
            "WARNING: journal is partial (reconstructed footer) — views "
            "cover the recorded prefix only",
            file=sys.stderr,
        )
    _warn_dropped(run.trace_dropped, f"recorded in {args.name}")
    tracer = run.tracer
    if args.view == "report":
        from repro.evaluation.obsreport import (
            REPORT_SCHEMA,
            render_report,
            report_dict,
        )

        if args.json != "-":
            print(
                render_report(
                    tracer, title=run.title(), trace_dropped=run.trace_dropped
                )
            )
            print()
        if args.json:
            payload = {
                "schema": REPORT_SCHEMA,
                "workload": run.workload,
                "engines": {
                    run.engine: report_dict(
                        tracer,
                        run.workload,
                        run.engine,
                        trace_dropped=run.trace_dropped,
                    )
                },
            }
            if run.fabric != "direct":
                payload["fabric"] = run.fabric
            _emit_json(args.json, payload)
    elif args.view == "timeline":
        from repro.evaluation.telemetryreport import (
            TIMELINE_SCHEMA,
            render_telemetry,
            telemetry_dict,
        )

        if args.json != "-":
            print(render_telemetry(tracer, title=run.title(), bins=args.bins))
            print()
        if args.json:
            payload = {
                "schema": TIMELINE_SCHEMA,
                "fidelity": run.fidelity,
                "workloads": {
                    run.workload: {
                        run.engine: telemetry_dict(
                            tracer, run.workload, run.engine, bins=args.bins
                        )
                    }
                },
            }
            if run.fabric != "direct":
                payload["fabric"] = run.fabric
            _emit_json(args.json, payload)
    elif args.view == "watch":
        from repro.obs.live import (
            LIVE_SCHEMA,
            STATUS_RUNNING,
            STATUS_STALLED,
            render_watch,
        )

        if run.watch_config is None and not run.frames:
            print(
                f"error: {args.name} was not recorded with live monitoring "
                "(no wcfg/fr records) — re-record with `watch --out`",
                file=sys.stderr,
            )
            return 2
        config = run.watch_config or {}
        interval = config.get("interval", 0.0)
        window = config.get("window", 0.0)
        label = _engine_label(run.engine, run.fabric)
        title = f"{run.label} ({run.data_size}) on {label}"
        if args.json != "-":
            print(render_watch(title, (interval, window), run.frames))
            print()
        if args.json:
            frames = run.frames
            payload = {
                "schema": LIVE_SCHEMA,
                "fidelity": run.fidelity,
                "workloads": {
                    run.workload: {
                        run.engine: {
                            "interval": interval,
                            "window": window,
                            "frames": frames,
                            "status": (
                                frames[-1]["status"] if frames else STATUS_RUNNING
                            ),
                            "stalled_frames": sum(
                                1 for f in frames if f["status"] == STATUS_STALLED
                            ),
                            "makespan": run.makespan,
                        }
                    }
                },
            }
            if run.fabric != "direct":
                payload["fabric"] = run.fabric
            _emit_json(args.json, payload)
    else:  # critpath
        from repro.obs.critpath import from_tracer, render_critpath

        cp = from_tracer(tracer)
        if args.json != "-":
            print(
                render_critpath(
                    cp,
                    title=f"Critical path — {run.label} "
                    f"({run.data_size}) on {run.engine}",
                )
            )
        if args.json:
            _emit_json(args.json, cp.to_dict())
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(), fh, sort_keys=True)
        print(
            f"wrote {args.chrome} ({run.workload} on {run.engine}, replayed)",
            file=sys.stderr,
        )
    return 0


def _explain_side(ref: str, args):
    """Build one explain side from a journal path or a workload:engine spec.

    Returns an :class:`~repro.obs.explain.ExplainSide`, or an int exit
    code on a bad reference.
    """
    import os

    from repro.obs.explain import side_from_tracer
    from repro.obs.journal import JournalError

    if os.path.exists(ref) or ref.endswith((".jsonl", ".jsonl.gz")):
        from repro.obs.replay import replay_file

        try:
            run = replay_file(ref, allow_partial=args.allow_partial)
        except (OSError, JournalError) as exc:
            print(f"error: {ref}: {exc}", file=sys.stderr)
            return 2
        if run.partial:
            print(
                f"WARNING: {ref} is partial (reconstructed footer)",
                file=sys.stderr,
            )
        _warn_dropped(run.trace_dropped, f"recorded in {ref}")
        meta = {
            k: v
            for k, v in (
                ("workload", run.workload),
                ("engine", run.engine),
                ("fidelity", run.fidelity),
                ("fabric", run.fabric if run.fabric != "direct" else None),
                ("seeded_slowdown", run.footer.get("seeded_slowdown")),
            )
            if v is not None
        }
        return side_from_tracer(run.tracer, ref, meta=meta)
    workload, sep, engine = ref.partition(":")
    if not sep or workload not in TABLE2_ORDER or engine not in ("hamr", "hadoop"):
        print(
            f"error: {ref!r} is neither a journal file nor a "
            "<workload>:<engine> spec "
            f"(workloads: {', '.join(TABLE2_ORDER)}; engines: hamr, hadoop)",
            file=sys.stderr,
        )
        return 2
    wl = workload_by_name(workload, args.fidelity)
    row = run_workload(
        wl,
        engines=engine,
        obs=True,
        trace_max_records=args.trace_max_records,
        **_fabric_opts(args, workload=wl),
    )
    tracer = row.hamr_obs if engine == "hamr" else row.hadoop_obs
    dropped = (
        row.hamr_trace_dropped if engine == "hamr" else row.hadoop_trace_dropped
    )
    _warn_dropped(dropped, ref)
    meta = {"workload": workload, "engine": engine, "fidelity": args.fidelity}
    if args.fabric != "direct":
        meta["fabric"] = args.fabric
    return side_from_tracer(tracer, ref, meta=meta)


def _explain(args) -> int:
    """Differential root-cause attribution between two runs."""
    from repro.obs.explain import explain, render_explain

    side_a = _explain_side(args.name, args)
    if isinstance(side_a, int):
        return side_a
    side_b = _explain_side(args.name2, args)
    if isinstance(side_b, int):
        return side_b
    result = explain(side_a, side_b)
    if args.json != "-":
        print(render_explain(result))
    if args.json:
        _emit_json(args.json, result.to_dict())
    return 0


def _whatif(args) -> int:
    """Counterfactual capacity planning from a run journal.

    Loads the journal (or runs ``workload:engine`` live to record one),
    predicts the scenario's makespan with bounds, optionally sweeps a
    knob into a capacity curve, and — the self-auditing half — executes
    scenarios for real to report the prediction error (``--execute`` for
    the requested one, ``--validate`` for the whole matrix), gated by
    ``--max-error``.
    """
    import os

    from repro.obs.journal import (
        JournalError,
        JournalWriter,
        dilate_bucket_charges,
        encode_record,
        journal_open,
        load_journal,
    )
    from repro.obs.whatif import (
        ScenarioError,
        WhatIfModel,
        parse_scenario,
        parse_sweep,
        render_sweep,
        render_validation,
        render_whatif,
        validate,
        whatif_dict,
    )

    try:
        scenario = parse_scenario(args.scenario)
        sweep_spec = parse_sweep(args.sweep) if args.sweep else None
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    ref = args.name
    if os.path.exists(ref) or ref.endswith((".jsonl", ".jsonl.gz")):
        try:
            records = load_journal(ref, allow_partial=args.allow_partial)
        except (OSError, JournalError) as exc:
            print(f"error: {ref}: {exc}", file=sys.stderr)
            return 2
    else:
        workload, sep, engine = ref.partition(":")
        if not sep or workload not in TABLE2_ORDER or engine not in ("hamr", "hadoop"):
            print(
                f"error: {ref!r} is neither a journal file nor a "
                "<workload>:<engine> spec "
                f"(workloads: {', '.join(TABLE2_ORDER)}; engines: hamr, hadoop)",
                file=sys.stderr,
            )
            return 2
        print(f"  running {ref} ...", file=sys.stderr, flush=True)
        wl = workload_by_name(workload, args.fidelity)
        row = run_workload(
            wl,
            engines=engine,
            journal=lambda e: JournalWriter(meta={"fidelity": args.fidelity}),
            trace_max_records=args.trace_max_records,
            **_fabric_opts(args, workload=wl),
        )
        _warn_dropped(_engine_column(row, engine, "trace_dropped"), ref)
        records = _engine_column(row, engine, "journal").records

    try:
        model = WhatIfModel(records)
    except JournalError as exc:
        print(f"error: {ref}: {exc}", file=sys.stderr)
        return 2
    if model.run.partial:
        print(
            "WARNING: journal is partial (reconstructed footer) — "
            "predictions cover the recorded prefix only",
            file=sys.stderr,
        )

    def executor(sc):
        """Run one scenario for real; None when it cannot be executed."""
        run = model.run
        if run.workload not in TABLE2_ORDER or run.engine not in ("hamr", "hadoop"):
            return None
        fidelity = run.fidelity or args.fidelity
        engine = run.engine
        base_fabric = run.fabric if run.fabric != "direct" else None
        base_partitioner = run.partitioner if run.partitioner != "hash" else None
        print(
            f"  executing {sc.describe()} on {run.workload}:{engine} ...",
            file=sys.stderr,
            flush=True,
        )
        wl = workload_by_name(run.workload, fidelity)
        if sc.bucket_only:
            # Independent end-to-end check: a fresh run, dilated by the
            # same transform the REPRO_OBS_SLOWDOWN seeding applies.
            fresh = run_workload(
                wl, engines=engine, journal=True,
                fabric=base_fabric, partitioner=base_partitioner,
                rack_size=model.rack_size or None,
            )
            writer = _engine_column(fresh, engine, "journal")
            dilated = dilate_bucket_charges(writer.records, sc.time_factors)
            return dilated[-1].get("makespan")
        if sc.serde_speed is not None:
            return None  # no executable serde knob
        if sc.nodes is not None:
            wl.num_workers = sc.nodes - 1
        fabric = sc.fabric if sc.fabric is not None else base_fabric
        rack_size = model.rack_size or None
        if sc.racks is not None:
            rack_size = max(1, wl.spec().num_workers // sc.racks)
        if sc.bucket_speeds:
            return None  # mixed structural + bucket scenarios: not executable
        fresh = run_workload(
            wl, engines=engine, partitioner=base_partitioner,
            fabric=fabric, rack_size=rack_size,
        )
        return _engine_column(fresh, engine, "seconds")

    predictions = [model.predict(scenario)]
    sweep_out = None
    if sweep_spec is not None:
        key, values = sweep_spec
        sweep_out = (key, model.sweep(key, values, scenario))
    rows = None
    if args.validate:
        rows = validate(model, executor)
    elif args.execute:
        rows = validate(model, executor, scenarios=[scenario])

    if args.emit_journal:
        if not (scenario.bucket_only or scenario.is_identity):
            print(
                "error: --emit-journal needs a bucket-only (or identity) "
                f"scenario — {scenario.describe()!r} changes cluster "
                "structure, which has no journal transform",
                file=sys.stderr,
            )
            return 2
        out_records = (
            records if scenario.is_identity else model.scenario_journal(scenario)
        )
        with journal_open(args.emit_journal, "w") as fh:
            for record in out_records:
                fh.write(encode_record(record) + "\n")
        print(
            f"wrote {args.emit_journal} ({scenario.describe()})", file=sys.stderr
        )

    if args.json != "-":
        print(render_whatif(model, predictions))
        if sweep_out is not None:
            print()
            print(render_sweep(model, sweep_out[0], sweep_out[1]))
        if rows is not None:
            print()
            print(render_validation(rows))
    if args.json:
        _emit_json(
            args.json,
            whatif_dict(model, predictions, sweep=sweep_out, validation=rows),
        )
    if args.max_error is not None and rows is not None:
        worst = max(
            (abs(row.error) for row in rows if row.error is not None), default=0.0
        )
        if worst > args.max_error:
            print(
                f"FAIL: worst prediction error {worst:.1%} exceeds "
                f"--max-error {args.max_error:.1%}",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: worst prediction error {worst:.1%} within "
            f"--max-error {args.max_error:.1%}",
            file=sys.stdout if args.json != "-" else sys.stderr,
        )
    return 0


def _corpus_index(args) -> str:
    from repro.obs.corpus import DEFAULT_INDEX_PATH

    return args.index or DEFAULT_INDEX_PATH


def _corpus_rows(args) -> "list[dict] | int":
    """Load the corpus index, or the exit code 2 after printing the error."""
    from repro.obs.corpus import load_corpus
    from repro.obs.journal import JournalError

    path = _corpus_index(args)
    try:
        return load_corpus(path)
    except OSError as exc:
        print(
            f"error: {exc} (build the index with `corpus ingest <dir>`)",
            file=sys.stderr,
        )
        return 2
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _parse_where(args) -> "dict | int":
    from repro.obs.corpus import parse_where

    if not args.where:
        return {}
    try:
        return parse_where(args.where)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _corpus(args) -> int:
    """The journal warehouse: ingest/ls/show over the canonical index."""
    import os

    from repro.obs.corpus import (
        CORPUS_SCHEMA,
        filter_rows,
        find_by_fingerprint,
        ingest,
        load_corpus,
        render_corpus,
        render_row,
        save_corpus,
    )
    from repro.obs.journal import JournalError

    index = _corpus_index(args)
    if args.name == "ingest":
        if not args.name2:
            print(
                "error: corpus ingest requires a directory or journal path",
                file=sys.stderr,
            )
            return 2
        if not os.path.exists(args.name2):
            print(f"error: no such path: {args.name2}", file=sys.stderr)
            return 2
        existing = load_corpus(index) if os.path.exists(index) else []
        try:
            rows, stats = ingest(
                [args.name2],
                existing,
                allow_partial=args.allow_partial,
                exclude=[index],
            )
        except (OSError, JournalError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        save_corpus(rows, index)
        print(
            f"{index}: {stats['scanned']} journal(s) scanned, "
            f"{stats['added']} added, {stats['duplicates']} duplicate(s), "
            f"{stats['skipped']} skipped — {len(rows)} run(s) indexed",
            file=sys.stderr,
        )
        return 0
    rows = _corpus_rows(args)
    if isinstance(rows, int):
        return rows
    if args.name == "show":
        if not args.name2:
            print(
                "error: corpus show requires a fingerprint prefix",
                file=sys.stderr,
            )
            return 2
        matched = find_by_fingerprint(rows, args.name2)
        if not matched:
            print(
                f"error: no corpus row matches fingerprint {args.name2!r}",
                file=sys.stderr,
            )
            return 2
        if len(matched) > 1:
            listing = ", ".join(row["fingerprint"][:12] for row in matched)
            print(
                f"error: fingerprint prefix {args.name2!r} is ambiguous "
                f"({listing})",
                file=sys.stderr,
            )
            return 2
        if args.json != "-":
            print(render_row(matched[0]))
        if args.json:
            _emit_json(args.json, matched[0])
        return 0
    # ls
    where = _parse_where(args)
    if isinstance(where, int):
        return where
    rows = filter_rows(rows, where)
    if args.json != "-":
        print(render_corpus(rows))
    if args.json:
        _emit_json(args.json, {"schema": CORPUS_SCHEMA, "rows": rows})
    return 0


def _doctor(args) -> int:
    """Automated regression diagnosis over two corpus-resolved journals."""
    import os

    from repro.obs.doctor import (
        DoctorError,
        diagnose,
        render_doctor,
        resolve_shift,
        resolve_spec,
    )
    from repro.obs.journal import JournalError
    from repro.obs.replay import replay_file

    index = _corpus_index(args)
    rows = load_rows = None
    if os.path.exists(index):
        load_rows = _corpus_rows(args)
        if isinstance(load_rows, int):
            return load_rows
    rows = load_rows or []
    shift = None
    try:
        if args.shift:
            from repro.obs.history import DEFAULT_HISTORY_PATH, load_history

            history_path = args.history or DEFAULT_HISTORY_PATH
            try:
                history = load_history(history_path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            path_a, path_b, shift = resolve_shift(
                history,
                rows,
                args.name,
                metric=args.metric,
                index_path=index,
                min_history=args.min_history,
                threshold=args.mad_threshold,
                sustain=args.sustain,
            )
        else:
            path_a = resolve_spec(rows, args.name, index)
            path_b = resolve_spec(rows, args.name2, index)
    except DoctorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runs = []
    for path in (path_a, path_b):
        try:
            run = replay_file(path, allow_partial=args.allow_partial)
        except (OSError, JournalError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        if run.partial:
            print(
                f"WARNING: {path} is partial (reconstructed footer)",
                file=sys.stderr,
            )
        _warn_dropped(run.trace_dropped, f"recorded in {path}")
        runs.append(run)
    report = diagnose(runs[0], runs[1], path_a, path_b, shift=shift)
    if args.json != "-":
        print(render_doctor(report))
    if args.json:
        _emit_json(args.json, report.to_dict())
    return 0


def _analytics(args) -> int:
    """Fleet SQL over the corpus, reference-checked across both engines."""
    from repro.obs.analytics import render_analytics, run_analytics

    if args.workers <= 0:
        print(
            f"error: --workers must be positive (got {args.workers})",
            file=sys.stderr,
        )
        return 2
    rows = _corpus_rows(args)
    if isinstance(rows, int):
        return rows
    where = _parse_where(args)
    if isinstance(where, int):
        return where
    if where:
        from repro.obs.corpus import filter_rows

        rows = filter_rows(rows, where)
    if not rows:
        print(
            "error: the corpus index holds no matching runs — ingest "
            "journals first (`corpus ingest <dir>`)",
            file=sys.stderr,
        )
        return 2
    report = run_analytics(rows, num_workers=args.workers)
    if args.json != "-":
        print(render_analytics(report))
    if args.json:
        _emit_json(args.json, report)
    if not report["all_match"]:
        print(
            "FAIL: engine results diverged on at least one canned query",
            file=sys.stderr,
        )
        return 1
    return 0


def _timeline(args) -> int:
    """Run traced workload(s) and print/export the telemetry report."""
    from repro.evaluation.telemetryreport import (
        TIMELINE_SCHEMA,
        render_telemetry,
        telemetry_dict,
    )

    filters = _expand_filters(args)
    if isinstance(filters, int):
        return filters
    workloads, _engines = filters
    exported: dict[str, dict] = {}
    chrome_pick = None
    for name in workloads:
        if len(workloads) > 1:
            print(f"  running {name} ...", file=sys.stderr, flush=True)
        workload = workload_by_name(name, args.fidelity)
        row = run_workload(
            workload, engines=args.engine, obs=True,
            trace_max_records=args.trace_max_records,
            **_fabric_opts(args, workload),
        )
        traced = [
            (engine, tracer)
            for engine, tracer in (("hamr", row.hamr_obs), ("hadoop", row.hadoop_obs))
            if tracer is not None
        ]
        if not traced:
            print(
                f"error: no traced engine runs for {name!r} "
                f"(--engine {args.engine})",
                file=sys.stderr,
            )
            return 2
        _warn_dropped(row.hamr_trace_dropped, f"{name} on hamr")
        _warn_dropped(row.hadoop_trace_dropped, f"{name} on hadoop")
        for engine, tracer in traced:
            makespan = row.hamr_seconds if engine == "hamr" else row.idh_seconds
            if args.json != "-":
                label = _engine_label(engine, args.fabric)
                print(
                    render_telemetry(
                        tracer,
                        title=f"== {row.label} ({row.data_size}) on {label} — "
                        f"makespan {makespan:.3f}s ==",
                        bins=args.bins,
                    )
                )
                print()
            exported.setdefault(name, {})[engine] = telemetry_dict(
                tracer, name, engine, bins=args.bins
            )
        if chrome_pick is None and traced:
            chrome_pick = (workloads[0], *traced[0])
    if args.json:
        payload = {
            "schema": TIMELINE_SCHEMA,
            "fidelity": args.fidelity,
            "workloads": exported,
        }
        if args.fabric != "direct":
            payload["fabric"] = args.fabric
        _emit_json(args.json, payload)
    if args.chrome and chrome_pick is not None:
        workload, engine, tracer = chrome_pick
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(), fh, sort_keys=True)
        print(f"wrote {args.chrome} ({workload} on {engine})", file=sys.stderr)
    return 0


def _report(args) -> int:
    """Run one traced workload and print/export the observability report."""
    from repro.evaluation.obsreport import REPORT_SCHEMA, render_report, report_dict

    filters = _expand_filters(args)
    if isinstance(filters, int):
        return filters
    workload = workload_by_name(args.workload, args.fidelity)
    row = run_workload(
        workload, engines=args.engine,
        obs=True, trace_max_records=args.trace_max_records,
        **_fabric_opts(args, workload),
    )
    traced = [
        (engine, tracer)
        for engine, tracer in (("hamr", row.hamr_obs), ("hadoop", row.hadoop_obs))
        if tracer is not None
    ]
    if not traced:
        print(
            f"error: no traced engine runs for {args.workload!r} "
            f"(--engine {args.engine})",
            file=sys.stderr,
        )
        return 2
    _warn_dropped(row.hamr_trace_dropped, f"{args.workload} on hamr")
    _warn_dropped(row.hadoop_trace_dropped, f"{args.workload} on hadoop")
    for engine, tracer in traced:
        makespan = row.hamr_seconds if engine == "hamr" else row.idh_seconds
        if args.json != "-":
            label = _engine_label(engine, args.fabric)
            print(
                render_report(
                    tracer,
                    title=f"== {row.label} ({row.data_size}) on {label} — "
                    f"makespan {makespan:.3f}s ==",
                    trace_dropped=_engine_column(row, engine, "trace_dropped"),
                )
            )
            print()
    if args.json:
        payload = {
            "schema": REPORT_SCHEMA,
            "workload": args.workload,
            "engines": {
                engine: report_dict(
                    tracer,
                    args.workload,
                    engine,
                    trace_dropped=_engine_column(row, engine, "trace_dropped"),
                )
                for engine, tracer in traced
            },
        }
        if args.fabric != "direct":
            payload["fabric"] = args.fabric
        _emit_json(args.json, payload)
    if args.chrome:
        # one merged trace file; engines run on separate virtual clusters,
        # so export the first traced engine (use --engine to pick).
        engine, tracer = traced[0]
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(), fh, sort_keys=True)
        print(f"wrote {args.chrome} ({engine} run)", file=sys.stderr)
    return 0


def _run_profiled(args, workloads: list[str]):
    """Run each workload traced+profiled; yield (name, row, traced) tuples.

    ``traced`` pairs each engine with its tracer and hostprof snapshot.
    """
    for name in workloads:
        if len(workloads) > 1:
            print(f"  running {name} ...", file=sys.stderr, flush=True)
        workload = workload_by_name(name, args.fidelity)
        row = run_workload(
            workload,
            engines=args.engine,
            obs=True,
            profile=True,
            **_fabric_opts(args, workload),
        )
        traced = [
            (engine, tracer, snap)
            for engine, tracer, snap in (
                ("hamr", row.hamr_obs, row.hamr_hostprof),
                ("hadoop", row.hadoop_obs, row.hadoop_hostprof),
            )
            if tracer is not None and snap is not None
        ]
        yield name, row, traced


def _profile(args) -> int:
    """Run workload(s) with the dual clock on; print host profile + fidelity."""
    from repro.evaluation.profilereport import profile_payload, render_hostprof
    from repro.obs.fidelity import fidelity_dict, render_fidelity

    filters = _expand_filters(args)
    if isinstance(filters, int):
        return filters
    workloads, _engines = filters
    entries: dict[str, dict] = {}
    chrome_pick = None
    for name, row, traced in _run_profiled(args, workloads):
        if not traced:
            print(
                f"error: no profiled engine runs for {name!r} "
                f"(--engine {args.engine})",
                file=sys.stderr,
            )
            return 2
        for engine, tracer, snap in traced:
            makespan = row.hamr_seconds if engine == "hamr" else row.idh_seconds
            fid = fidelity_dict(tracer, snap, name, engine)
            if args.json != "-":
                label = _engine_label(engine, args.fabric)
                print(
                    render_hostprof(
                        snap,
                        title=f"== {row.label} ({row.data_size}) on {label} — "
                        f"virtual makespan {makespan:.3f}s, "
                        f"host {snap['total_ns'] / 1e6:.1f}ms ==",
                    )
                )
                print()
                print(render_fidelity(fid))
                print()
            entries.setdefault(name, {})[engine] = {
                "hostprof": snap,
                "fidelity": fid,
            }
        if chrome_pick is None:
            chrome_pick = (name, *traced[0])
    if args.json:
        _emit_json(args.json, profile_payload(args.fidelity, entries))
    if args.chrome and chrome_pick is not None:
        workload, engine, tracer, snap = chrome_pick
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(hostprof=snap), fh, sort_keys=True)
        print(f"wrote {args.chrome} ({workload} on {engine})", file=sys.stderr)
    return 0


def _calibrate(args) -> int:
    """Re-fit compute-cost constants from measured host time (proposal only)."""
    from repro.cluster.spec import CostModel
    from repro.obs.fidelity import (
        _engine_samples,
        calibration_dict,
        fit_cost_constants,
        render_calibration,
    )

    filters = _expand_filters(args)
    if isinstance(filters, int):
        return filters
    workloads, _engines = filters
    samples = []
    sources = []
    for name, _row, traced in _run_profiled(args, workloads):
        if not traced:
            print(
                f"error: no profiled engine runs for {name!r} "
                f"(--engine {args.engine})",
                file=sys.stderr,
            )
            return 2
        for engine, _tracer, snap in traced:
            samples.extend(_engine_samples(snap))
            sources.append(f"{name}/{engine}")
    fit = fit_cost_constants(samples, CostModel())
    if fit is None:
        print(
            "error: no engine-bucket samples with recorded work units — "
            "nothing to fit",
            file=sys.stderr,
        )
        return 2
    cal = calibration_dict(fit, sources)
    if args.json != "-":
        print(render_calibration(cal))
    if args.json:
        _emit_json(args.json, cal)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
