"""Observability reports: per-node Gantt, blame breakdown, utilization.

Renders one engine run's :class:`~repro.obs.Tracer` as the paper-style
diagnostic the driver prints for ``python -m repro.evaluation report``:
where every node's threads were busy over virtual time, where each job's
task-seconds went (the §5.2 stall/atomic pathology shows up here), how
much was spilled, and how often flow control kicked in.

All output is deterministic — two identical runs render byte-identical
reports and serialize byte-identical JSON.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.common.units import format_bytes
from repro.evaluation.report import render_table
from repro.obs import BUCKETS, Span, Tracer, assign_lanes
from repro.obs.critpath import from_tracer, render_critpath

REPORT_SCHEMA = "repro.obs.report/v4"

#: glyph per task-span name prefix, in legend order
_GLYPHS = (
    ("load", "L"),
    ("map", "M"),
    ("partial_reduce", "P"),
    ("collect", "c"),
    ("finalize", "F"),
    ("reduce", "R"),
    ("spill", "s"),
    ("stall", "~"),
)


def _glyph(name: str) -> str:
    for prefix, glyph in _GLYPHS:
        if name.startswith(prefix):
            return glyph
    return "#"


def render_gantt(
    tracer: Tracer,
    width: int = 72,
    cats: tuple[str, ...] = ("task", "stall", "spill"),
    max_lanes_per_node: int = 6,
) -> str:
    """ASCII per-node Gantt: one row per concurrently-busy lane.

    Lanes come from the same greedy assignment as the Chrome trace's
    ``tid``s, so the two views agree on concurrency structure.
    """
    spans = [
        s for s in tracer.finished_spans() if s.cat in cats and s.node is not None
    ]
    if not spans:
        return "(no task spans recorded — was the run traced?)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    lanes = assign_lanes(spans)
    by_node: dict[int, dict[int, list[Span]]] = {}
    for span in spans:
        by_node.setdefault(span.node, {}).setdefault(lanes[span.span_id], []).append(span)

    legend = "  ".join(f"{glyph}={prefix}" for prefix, glyph in _GLYPHS)
    lines = [
        f"Task timeline, virtual time {t0:.3f}s .. {t1:.3f}s  ({legend})",
    ]
    for node in sorted(by_node):
        node_lanes = sorted(by_node[node])
        for lane in node_lanes[:max_lanes_per_node]:
            row = [" "] * width
            for span in by_node[node][lane]:
                a = int((span.start - t0) / extent * (width - 1))
                b = int((span.end - t0) / extent * (width - 1))
                glyph = _glyph(span.name)
                for i in range(a, b + 1):
                    row[i] = glyph
            lines.append(f"  n{node:<3}|{''.join(row)}|")
        hidden = len(node_lanes) - max_lanes_per_node
        if hidden > 0:
            lines.append(f"  n{node:<3}... {hidden} more lane(s) not shown")
    return "\n".join(lines)


def render_blame(tracer: Tracer) -> str:
    """Per-job blame table: task-seconds and share per bucket."""
    jobs = tracer.blame.jobs()
    if not jobs:
        return "(no blame charges recorded)"
    sections = []
    for job in jobs:
        total = tracer.blame.job_total(job)
        summary = tracer.blame.job_summary(job)
        rows = [
            [bucket, summary[bucket], 100.0 * summary[bucket] / total if total else 0.0]
            for bucket in BUCKETS
        ]
        rows.append(["total", total, 100.0 if total else 0.0])
        sections.append(
            render_table(
                ["bucket", "task-seconds", "share %"],
                rows,
                title=f"Blame — job {job!r}",
            )
        )
    return "\n\n".join(sections)


def render_utilization(tracer: Tracer) -> str:
    """Per-node worker-thread utilization from the ``threads_busy`` series,
    plus each node's memory high-water mark and when it was reached."""
    series_by_node = {
        dict(key).get("node"): ts
        for key, ts in tracer.metrics._series.get("threads_busy", {}).items()
    }
    nodes = sorted(n for n in series_by_node if n is not None)
    if not nodes:
        return "(no thread-utilization series recorded)"
    high_water = {
        dict(key).get("node"): gauge.value
        for key, gauge in tracer.metrics._gauges.get("memory.high_water", {}).items()
    }
    high_water_time = {
        dict(key).get("node"): gauge.value
        for key, gauge in tracer.metrics._gauges.get("memory.high_water_time", {}).items()
    }
    end = tracer.sim.now
    rows = []
    for node in nodes:
        points = series_by_node[node].points
        busy_integral = 0.0
        peak = 0.0
        prev_t, prev_v = 0.0, 0.0
        for t, v in points:
            busy_integral += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
            peak = max(peak, v)
        busy_integral += prev_v * (end - prev_t)
        mean = busy_integral / end if end > 0 else 0.0
        hw = high_water.get(node)
        rows.append(
            [
                f"n{node}",
                mean,
                int(peak),
                format_bytes(hw) if hw is not None else "-",
                f"{high_water_time.get(node, 0.0):.3f}s" if hw is not None else "-",
            ]
        )
    return render_table(
        ["node", "mean busy threads", "peak", "mem high-water", "at t"],
        rows,
        title="Thread utilization",
    )


def render_counters(tracer: Tracer) -> str:
    """Spill / DFS-locality / flow-control counter summary."""
    metrics = tracer.metrics
    rows = []
    for name, label in (
        ("spill.runs", "spill runs"),
        ("spill.bytes", "bytes spilled"),
        ("spill.bytes_read_back", "spill bytes read back"),
        ("dfs.local_reads", "DFS local block reads"),
        ("dfs.remote_reads", "DFS remote block reads"),
        ("flow.stalls", "flow-control stalls"),
    ):
        total = metrics.counter_total(name)
        if total:
            rows.append([label, int(total)])
    if not rows:
        return "(no spill / locality / stall events recorded)"
    return render_table(["event", "count"], rows, title="Spill, locality and flow control")


def spill_by_node(tracer: Tracer) -> dict:
    """Per-node cumulative spill activity from the node-labeled counters.

    The SpillPool's per-node :class:`~repro.storage.spill.SpillManager`\\ s
    charge ``spill.runs`` / ``spill.bytes`` / ``spill.bytes_read_back``
    with a ``node=`` label at every spill — this collects them into the
    per-node view the report shows (they were charged but never shown).
    """
    metrics = tracer.metrics
    runs = metrics.counter_by("spill.runs", "node")
    nbytes = metrics.counter_by("spill.bytes", "node")
    read_back = metrics.counter_by("spill.bytes_read_back", "node")
    nodes = sorted(
        n for n in set(runs) | set(nbytes) | set(read_back) if n is not None
    )
    return {
        "nodes": {
            str(node): {
                "runs": int(runs.get(node, 0)),
                "bytes": int(nbytes.get(node, 0)),
                "bytes_read_back": int(read_back.get(node, 0)),
            }
            for node in nodes
        },
        "total_runs": int(sum(runs.values())),
        "total_bytes": int(sum(nbytes.values())),
        "total_bytes_read_back": int(sum(read_back.values())),
    }


def render_spill(tracer: Tracer) -> str:
    """Per-node spill table: runs, cumulative bytes, read-back bytes."""
    spill = spill_by_node(tracer)
    if not spill["nodes"]:
        return "(no spill activity recorded)"
    rows = [
        [
            f"n{node}",
            entry["runs"],
            format_bytes(entry["bytes"]),
            format_bytes(entry["bytes_read_back"]),
        ]
        for node, entry in spill["nodes"].items()
    ]
    rows.append(
        [
            "total",
            spill["total_runs"],
            format_bytes(spill["total_bytes"]),
            format_bytes(spill["total_bytes_read_back"]),
        ]
    )
    return render_table(
        ["node", "spill runs", "bytes spilled", "bytes read back"],
        rows,
        title="Spill activity by node (logical bytes)",
    )


def render_percentiles(tracer: Tracer) -> str:
    """p50/p95/p99 summary per histogram family (span durations etc.)."""
    rows = []
    for name, family in tracer.metrics.histogram_families().items():
        for labels, hist in family:
            if not hist.count:
                continue
            label = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            pct = hist.percentiles()
            rows.append(
                [f"{name}{{{label}}}" if label else name, hist.count,
                 pct["p50"], pct["p95"], pct["p99"]]
            )
    if not rows:
        return "(no histogram observations recorded)"
    return render_table(
        ["histogram", "n", "p50", "p95", "p99"], rows, title="Duration percentiles"
    )


def render_critpaths(tracer: Tracer) -> str:
    """Critical-path section: one path analysis per traced job."""
    jobs = tracer.blame.jobs()
    sections = []
    for job in jobs:
        cp = from_tracer(tracer, job=job)
        if not cp.segments:
            continue
        sections.append(render_critpath(cp, title=f"Critical path — job {job!r}"))
    if not sections:
        return "(no critical path — no finished spans recorded)"
    return "\n\n".join(sections)


def render_report(tracer: Tracer, title: str = "", trace_dropped: int = 0) -> str:
    """The full ASCII observability report for one traced run.

    ``trace_dropped`` is the run's sim-trace ring-buffer eviction count
    (live: ``BenchmarkRow.*_trace_dropped``; replay: the journal footer)
    — nonzero means the trace views below may be incomplete, and the
    report says so rather than passing truncation off as the whole run.
    """
    parts = [title] if title else []
    if trace_dropped:
        parts.append(
            f"WARNING: {trace_dropped} sim-trace records dropped — "
            "trace-derived views below may be incomplete"
        )
    parts.append(render_gantt(tracer))
    parts.append(render_blame(tracer))
    parts.append(render_critpaths(tracer))
    parts.append(render_percentiles(tracer))
    parts.append(render_utilization(tracer))
    parts.append(render_counters(tracer))
    parts.append(render_spill(tracer))
    return "\n\n".join(parts)


def report_dict(
    tracer: Tracer, workload: str, engine: str, trace_dropped: int = 0
) -> dict:
    """Deterministic JSON-serializable report (schema ``repro.obs.report/v4``)."""
    spans = tracer.finished_spans()
    return {
        "schema": REPORT_SCHEMA,
        "workload": workload,
        "engine": engine,
        "trace_dropped": int(trace_dropped),
        "virtual_end": tracer.sim.now,
        "blame": tracer.blame.snapshot(),
        "spill": spill_by_node(tracer),
        "counters": {
            name: tracer.metrics.counter_total(name)
            for name in tracer.metrics.names()
            if tracer.metrics._counters.get(name)
        },
        "span_counts": _span_counts(spans),
        "critpath": from_tracer(tracer).to_dict(),
        "trace": tracer.to_dict(),
    }


def report_json(
    tracer: Tracer,
    workload: str,
    engine: str,
    indent: Optional[int] = None,
    trace_dropped: int = 0,
) -> str:
    return json.dumps(
        report_dict(tracer, workload, engine, trace_dropped=trace_dropped),
        sort_keys=True,
        indent=indent,
    )


def _span_counts(spans: list[Span]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for span in spans:
        counts[span.cat] = counts.get(span.cat, 0) + 1
    return dict(sorted(counts.items()))
