"""Paper-scale workload presets.

Each :class:`Workload` bundles: the app's parameter object at a tractable
*real* size, the modeled data size from Table 2, and the derived scale
factor such that ``real logical bytes x scale = modeled bytes``. Runs then
execute real records while charging paper-scale costs (DESIGN.md §7).

``fidelity`` picks the real-size budget:

* ``"tiny"``  — seconds-fast, for the test suite;
* ``"small"`` — the default for ``benchmarks/`` (a couple of MB per app);
* ``"medium"``— closer-grained curves, minutes of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.apps import classification, histograms, kcliques, kmeans, naive_bayes, pagerank, wordcount
from repro.apps.base import AppEnv, AppResult
from repro.cluster.spec import ClusterSpec, paper_cluster_spec
from repro.common.sizeof import logical_sizeof
from repro.common.units import MB, parse_bytes

_FIDELITY_BUDGET = {"tiny": 0.1, "small": 1.0, "medium": 4.0}


@dataclass
class Workload:
    """One benchmark at one modeled data size."""

    name: str  # registry key, e.g. "kmeans"
    label: str  # display name matching the paper's row
    data_size: str  # e.g. "300GB"
    params: Any
    records: list = field(repr=False, default_factory=list)
    scale: float = 1.0
    run_hamr: Callable[[AppEnv, Any, list], AppResult] = None
    run_hadoop: Callable[[AppEnv, Any, list], AppResult] = None
    #: worker-count override for node-scaling runs (None = the paper's
    #: 15 workers + master); set by ``--nodes`` sweeps and the what-if
    #: validation harness
    num_workers: Optional[int] = None

    @property
    def modeled_bytes(self) -> int:
        return parse_bytes(self.data_size)

    @property
    def real_bytes(self) -> int:
        return sum(logical_sizeof(r) for r in self.records)

    def spec(self) -> ClusterSpec:
        """The paper's 16-node cluster with this workload's scale factor
        (cluster size overridden when ``num_workers`` is set)."""
        spec = paper_cluster_spec(scale=self.scale)
        if self.num_workers is not None:
            if self.num_workers < 1:
                raise ValueError(f"num_workers must be >= 1: {self.num_workers}")
            spec = replace(spec, num_nodes=self.num_workers + 1)
        return spec

    def fresh_env(
        self,
        obs: bool = False,
        journal=None,
        trace_max_records=None,
        fabric=None,
        partitioner=None,
        rack_size=None,
    ) -> AppEnv:
        return AppEnv(
            self.spec(), obs=obs, journal=journal,
            trace_max_records=trace_max_records,
            fabric=fabric, partitioner=partitioner, rack_size=rack_size,
        )


def _finish(workload: Workload) -> Workload:
    real = workload.real_bytes
    if real <= 0:
        raise ValueError(f"{workload.name}: generated an empty input")
    workload.scale = workload.modeled_bytes / real
    return workload


def _budget(fidelity: str) -> float:
    try:
        return _FIDELITY_BUDGET[fidelity]
    except KeyError:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; pick one of {sorted(_FIDELITY_BUDGET)}"
        ) from None


# -- per-benchmark builders -------------------------------------------------------------


def make_kmeans(fidelity: str = "small", seed: int = 0) -> Workload:
    b = _budget(fidelity)
    params = kmeans.KMeansParams(n_movies=int(6_000 * b), k=16, seed=seed)
    records = kmeans.generate_input(params)
    return _finish(
        Workload(
            "kmeans", "K-Means", "300GB", params, records,
            run_hamr=kmeans.run_hamr, run_hadoop=kmeans.run_hadoop,
        )
    )


def make_classification(fidelity: str = "small", seed: int = 0) -> Workload:
    b = _budget(fidelity)
    params = classification.ClassificationParams(n_movies=int(6_000 * b), k=16, seed=seed)
    records = classification.generate_input(params)
    return _finish(
        Workload(
            "classification", "Classification", "300GB", params, records,
            run_hamr=classification.run_hamr, run_hadoop=classification.run_hadoop,
        )
    )


def make_pagerank(fidelity: str = "small", seed: int = 0) -> Workload:
    b = _budget(fidelity)
    n_pages = int(3_000 * b)
    params = pagerank.PageRankParams(
        n_pages=n_pages, n_edges=n_pages * 10, iterations=5, seed=seed
    )
    records = pagerank.generate_input(params)
    return _finish(
        Workload(
            "pagerank", "PageRank", "20GB", params, records,
            run_hamr=pagerank.run_hamr, run_hadoop=pagerank.run_hadoop,
        )
    )


def make_kcliques(fidelity: str = "small", seed: int = 0) -> Workload:
    b = _budget(fidelity)
    # The clique workload's cost is combinatorial, not byte-bound: keep the
    # real graph structured like the paper's R-MAT input (dense power-law
    # core) but small enough to enumerate.
    params = kcliques.KCliquesParams(
        scale=9, n_edges=int(4_000 * max(b, 0.25)), k=4, seed=seed,
        hadoop_reducers=120,
    )
    records = kcliques.generate_input(params)
    return _finish(
        Workload(
            "kcliques", "KCliques", "168MB", params, records,
            run_hamr=kcliques.run_hamr, run_hadoop=kcliques.run_hadoop,
        )
    )


def make_wordcount(fidelity: str = "small", seed: int = 0) -> Workload:
    b = _budget(fidelity)
    params = wordcount.WordCountParams(target_bytes=int(2 * MB * b), seed=seed)
    records = wordcount.generate_input(params)
    return _finish(
        Workload(
            "wordcount", "WordCount", "16GB", params, records,
            run_hamr=wordcount.run_hamr, run_hadoop=wordcount.run_hadoop,
        )
    )


def _make_histogram(app: str, fidelity: str, seed: int, use_combiner: bool = False) -> Workload:
    b = _budget(fidelity)
    params = histograms.HistogramParams(
        n_movies=int(12_000 * b), seed=seed, hamr_combiner=use_combiner
    )
    records = histograms.generate_input(params)
    if app == "histogram_movies":
        run_hamr, run_hadoop = histograms.run_movies_hamr, histograms.run_movies_hadoop
        label = "HistogramMovies"
    else:
        run_hamr, run_hadoop = histograms.run_ratings_hamr, histograms.run_ratings_hadoop
        label = "HistogramRatings"
    return _finish(
        Workload(app, label, "30GB", params, records, run_hamr=run_hamr, run_hadoop=run_hadoop)
    )


def make_histogram_movies(fidelity: str = "small", seed: int = 0, use_combiner: bool = False) -> Workload:
    return _make_histogram("histogram_movies", fidelity, seed, use_combiner)


def make_histogram_ratings(fidelity: str = "small", seed: int = 0, use_combiner: bool = False) -> Workload:
    return _make_histogram("histogram_ratings", fidelity, seed, use_combiner)


def make_naive_bayes(fidelity: str = "small", seed: int = 0) -> Workload:
    b = _budget(fidelity)
    params = naive_bayes.NaiveBayesParams(n_documents=int(3_000 * b), seed=seed)
    records = naive_bayes.generate_input(params)
    return _finish(
        Workload(
            "naive_bayes", "NaiveBayes", "10GB", params, records,
            run_hamr=naive_bayes.run_hamr, run_hadoop=naive_bayes.run_hadoop,
        )
    )


_BUILDERS = {
    "kmeans": make_kmeans,
    "classification": make_classification,
    "pagerank": make_pagerank,
    "kcliques": make_kcliques,
    "wordcount": make_wordcount,
    "histogram_movies": make_histogram_movies,
    "histogram_ratings": make_histogram_ratings,
    "naive_bayes": make_naive_bayes,
}

#: Table 2 row order.
TABLE2_ORDER = [
    "kmeans",
    "classification",
    "pagerank",
    "kcliques",
    "wordcount",
    "histogram_movies",
    "histogram_ratings",
    "naive_bayes",
]


def workload_by_name(name: str, fidelity: str = "small", **kw) -> Workload:
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; pick from {sorted(_BUILDERS)}") from None
    return builder(fidelity, **kw)


def table2_workloads(fidelity: str = "small") -> list[Workload]:
    return [workload_by_name(name, fidelity) for name in TABLE2_ORDER]
